(* Ablation studies beyond the paper's tables. Each isolates one
   design choice DESIGN.md calls out:

   - scheduling: does the SLA-tree enhancement help *any* baseline
     order, not just FCFS and CBS? (Sec 6.1 claims it makes
     "SLA-unaware baseline policies become SLA-aware".)
   - dispatching: the full baseline ladder (Random, RR, SITA, LWL)
     against profit-aware dispatch.
   - admission control: the "or should we simply reject" option of
     Sec 1, exercised at overload.
   - incremental SLA-tree: the lazy structure vs rebuilding from
     scratch on every decision (the paper's future work, Sec 9).
   - learned estimates: Sec 7.5's robustness with a real predictor
     (kNN per Sec 2.3) instead of parametric Gaussian noise. *)

(* ------------------------------------------------------------------ *)
(* Scheduling ablation: every baseline order, with and without the
   SLA-tree re-ranking, SLA-B at load 0.9. *)

let sched_rows kind =
  let rate = Exp_common.cbs_rate kind in
  [
    ("FCFS", Schedulers.fcfs, Schedulers.fcfs_sla_tree);
    ("SJF", Schedulers.sjf, Schedulers.sjf_sla_tree);
    ("EDF", Schedulers.edf, Schedulers.edf_sla_tree);
    ("Value-EDF", Schedulers.value_edf, Schedulers.value_edf_sla_tree);
    ("CBS", Schedulers.cbs ~rate, Schedulers.cbs_sla_tree ~rate);
  ]

type sched_cell = {
  base_name : string;
  kind : Workloads.kind;
  base_loss : float;
  tree_loss : float;
}

let sched_compute ?(kinds = Workloads.all_kinds) ?(load = 0.9) (scale : Exp_scale.t) =
  (* Independent (kind, baseline) cells fan out across the ambient
     pool in spec order. *)
  List.concat_map
    (fun kind -> List.map (fun row -> (kind, row)) (sched_rows kind))
    kinds
  |> Parallel.map_list (fun (kind, (base_name, base, tree)) ->
         let make_trace_cfg ~seed =
           Trace.config ~kind ~profile:Workloads.Sla_b ~load ~servers:1
             ~n_queries:scale.n_queries ~seed ()
         in
         let loss scheduler =
           Exp_common.avg_loss_over_repeats scale ~make_trace_cfg ~n_servers:1
             ~scheduler ~dispatcher:Dispatchers.round_robin
         in
         { base_name; kind; base_loss = loss base; tree_loss = loss tree })

let sched_run ppf scale =
  let cells = sched_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: SLA-tree enhancement across baseline schedulers (SLA-B, \
     load 0.9) ===@.";
  Fmt.pf ppf "%-12s %10s %12s %14s %10s@." "baseline" "workload" "baseline" "+SLA-tree"
    "change";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-12s %10s %12.3f %14.3f %9.1f%%@." c.base_name
        (Workloads.kind_name c.kind) c.base_loss c.tree_loss
        (100.0 *. (c.tree_loss -. c.base_loss) /. Float.max c.base_loss 1e-9))
    cells

(* ------------------------------------------------------------------ *)
(* Dispatching ablation: the whole baseline ladder at 5 servers,
   SLA-A, load 0.9, CBS+SLA-tree scheduling everywhere. *)

type disp_cell = { disp_name : string; kind : Workloads.kind; loss : float }

let disp_compute ?(kinds = [ Workloads.Exp; Workloads.Pareto ]) ?(servers = 5)
    (scale : Exp_scale.t) =
  (* Independent (kind, dispatcher) cells fan out across the ambient
     pool in spec order. *)
  List.concat_map
    (fun kind ->
      let rate = Exp_common.cbs_rate kind in
      let planner = Planner.cbs ~rate in
      List.map
        (fun dispatcher -> (kind, rate, dispatcher))
        [
          Dispatchers.random ~seed:9;
          Dispatchers.round_robin;
          Sita.for_workload ~seed:11 kind ~classes:servers;
          Dispatchers.lwl;
          Dispatchers.sla_tree planner;
        ])
    kinds
  |> Parallel.map_list (fun (kind, rate, dispatcher) ->
         let scheduler = Schedulers.cbs_sla_tree ~rate in
         let make_trace_cfg ~seed =
           Trace.config ~kind ~profile:Workloads.Sla_a ~load:0.9 ~servers
             ~n_queries:scale.n_queries ~seed ()
         in
         let loss =
           Exp_common.avg_loss_over_repeats scale ~make_trace_cfg
             ~n_servers:servers ~scheduler ~dispatcher
         in
         { disp_name = Dispatchers.name dispatcher; kind; loss })

let disp_run ppf scale =
  let cells = disp_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: dispatching baseline ladder (SLA-A, load 0.9, 5 servers) \
     ===@.";
  Fmt.pf ppf "%-10s %10s %10s@." "dispatcher" "workload" "avg loss";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-10s %10s %10.3f@." c.disp_name (Workloads.kind_name c.kind)
        c.loss)
    cells

(* ------------------------------------------------------------------ *)
(* Admission control at overload: accepting everything vs rejecting
   queries whose best insertion delta is negative. *)

type admission_cell = {
  load : float;
  admission : bool;
  avg_loss : float;
  avg_profit : float;
  rejected : int;
}

let admission_compute ?(loads = [ 0.9; 1.1; 1.4 ]) (scale : Exp_scale.t) =
  let kind = Workloads.Exp in
  let rate = Exp_common.cbs_rate kind in
  let scheduler = Schedulers.cbs_sla_tree ~rate in
  let planner = Planner.cbs ~rate in
  (* Independent (load, admission) cells fan out across the ambient
     pool; per-repeat results come back in repeat order and are folded
     serially (bit-identical to the serial run). *)
  List.concat_map
    (fun load -> List.map (fun admission -> (load, admission)) [ false; true ])
    loads
  |> Parallel.map_list (fun (load, admission) ->
         let per_repeat =
           Parallel.map_ordered
             (fun repeat ->
               let cfg =
                 Trace.config ~kind ~profile:Workloads.Sla_b ~load ~servers:2
                   ~n_queries:scale.n_queries
                   ~seed:(Exp_scale.seed scale ~repeat)
                   ()
               in
               let metrics =
                 Exp_common.run_once ~trace_cfg:cfg ~n_servers:2 ~scheduler
                   ~dispatcher:(Dispatchers.sla_tree ~admission planner)
                   ~warmup_id:scale.warmup
               in
               ( Metrics.avg_loss metrics,
                 Metrics.avg_profit metrics,
                 Metrics.rejected_count metrics ))
             (Array.init scale.repeats Fun.id)
         in
         let loss = Stats.create ()
         and profit = Stats.create ()
         and rejected = ref 0 in
         Array.iter
           (fun (l, p, r) ->
             Stats.add loss l;
             Stats.add profit p;
             rejected := !rejected + r)
           per_repeat;
         {
           load;
           admission;
           avg_loss = Stats.mean loss;
           avg_profit = Stats.mean profit;
           rejected = !rejected / scale.repeats;
         })

let admission_run ppf scale =
  let cells = admission_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: admission control at overload (SLA-B, Exp, 2 servers) ===@.";
  Fmt.pf ppf "%6s %12s %10s %12s %10s@." "load" "admission" "avg loss" "avg profit"
    "rejected";
  List.iter
    (fun c ->
      Fmt.pf ppf "%6.1f %12s %10.3f %12.3f %10d@." c.load
        (if c.admission then "reject<0" else "accept all")
        c.avg_loss c.avg_profit c.rejected)
    cells

(* ------------------------------------------------------------------ *)
(* Incremental SLA-tree vs full rebuild: a synthetic FCFS stream of
   (append, pop, ask-every-query) cycles. *)

type incr_result = {
  buffer_len : int;
  rebuild_ms_per_cycle : float;
  incremental_ms_per_cycle : float;
  rebuilds : int;
}

(* Stays serial even under [-j]: both strategies are timed with
   [Sys.time], which measures process-wide CPU, so concurrent runs
   would corrupt each other's measurements. *)
let incr_compute ?(buffer_sizes = [ 100; 400; 1600 ]) ~seed () =
  let cycles = 200 in
  List.map
    (fun n ->
      let buffer = Fig17.make_buffer ~seed n in
      let fresh_query i =
        let rng = Prng.create (seed + i) in
        Query.make ~id:(100_000 + i)
          ~arrival:(200.0 +. Float.of_int i)
          ~size:(Prng.exponential rng ~mean:20.0)
          ~sla:
            (Sla.make
               ~levels:[ { bound = 1e7; gain = 2.0 }; { bound = 2e7; gain = 1.0 } ]
               ~penalty:0.0)
          ()
      in
      (* Full-rebuild strategy. *)
      Gc.compact ();
      let t0 = Sys.time () in
      let queries = ref (Array.to_list buffer) in
      for i = 0 to cycles - 1 do
        queries := List.tl !queries @ [ fresh_query i ];
        let arr = Array.of_list !queries in
        let tree = Sla_tree.build ~now:200.0 arr in
        ignore (Sla_tree.postpone tree ~m:0 ~n:(Array.length arr - 1) ~tau:40.0)
      done;
      let rebuild_ms = (Sys.time () -. t0) *. 1000.0 /. Float.of_int cycles in
      (* Incremental strategy. *)
      Gc.compact ();
      let t1 = Sys.time () in
      let incr = Incr_sla_tree.create ~now:200.0 buffer in
      for i = 0 to cycles - 1 do
        Incr_sla_tree.pop_head incr;
        Incr_sla_tree.append incr (fresh_query i);
        ignore
          (Incr_sla_tree.postpone incr ~m:0 ~n:(Incr_sla_tree.length incr - 1)
             ~tau:40.0)
      done;
      let incr_ms = (Sys.time () -. t1) *. 1000.0 /. Float.of_int cycles in
      {
        buffer_len = n;
        rebuild_ms_per_cycle = rebuild_ms;
        incremental_ms_per_cycle = incr_ms;
        rebuilds = Incr_sla_tree.rebuild_count incr;
      })
    buffer_sizes

let incr_run ppf ~seed () =
  let rows = incr_compute ~seed () in
  Fmt.pf ppf
    "@.=== Ablation: incremental SLA-tree vs full rebuild (pop+append+question \
     cycles) ===@.";
  Fmt.pf ppf "%8s %14s %14s %10s %10s@." "buffer" "rebuild ms" "incr ms" "speedup"
    "rebuilds";
  List.iter
    (fun r ->
      Fmt.pf ppf "%8d %14.4f %14.4f %9.1fx %10d@." r.buffer_len
        r.rebuild_ms_per_cycle r.incremental_ms_per_cycle
        (r.rebuild_ms_per_cycle /. Float.max r.incremental_ms_per_cycle 1e-9)
        r.rebuilds)
    rows

(* ------------------------------------------------------------------ *)
(* Learned estimates: replace Sec 7.5's parametric noise with a kNN
   predictor trained on observed plan executions. *)

type predictor_cell = {
  estimates : string;
  cbs_loss : float;
  tree_loss : float;
  mape : float;
}

let predictor_compute (scale : Exp_scale.t) =
  let predictor = Cost_predictor.train ~seed:scale.base_seed () in
  let mape = Cost_predictor.evaluate predictor ~seed:(scale.base_seed + 1) in
  let run ~perfect =
    (* The trained predictor is only read from here, so repeats fan
       out across the ambient pool; per-repeat (CBS, CBS+SLA-tree)
       pairs come back in repeat order and are folded serially. *)
    let pairs =
      Parallel.map_ordered
        (fun repeat ->
          let queries =
            Cost_predictor.generate_trace predictor ~profile:Workloads.Sla_b
              ~load:0.9 ~servers:1 ~n_queries:scale.n_queries
              ~seed:(Exp_scale.seed scale ~repeat)
          in
          let queries =
            if perfect then
              Array.map
                (fun q ->
                  Query.make ~id:q.Query.id ~arrival:q.Query.arrival
                    ~size:q.Query.size ~est_size:q.Query.size ~sla:q.Query.sla
                    ~tenant:q.Query.tenant ())
                queries
            else queries
          in
          let mean =
            Array.fold_left (fun acc q -> acc +. q.Query.est_size) 0.0 queries
            /. Float.of_int (Array.length queries)
          in
          let rate = 1.0 /. mean in
          let loss scheduler =
            let metrics = Metrics.create ~warmup_id:scale.warmup () in
            Sim.run ~queries ~n_servers:1
              ~pick_next:(Schedulers.pick scheduler)
              ~dispatch:(Dispatchers.instantiate Dispatchers.round_robin)
              ~metrics ();
            Metrics.avg_loss metrics
          in
          (loss (Schedulers.cbs ~rate), loss (Schedulers.cbs_sla_tree ~rate)))
        (Array.init scale.repeats Fun.id)
    in
    let cbs_acc = Stats.create () and tree_acc = Stats.create () in
    Array.iter
      (fun (c, t) ->
        Stats.add cbs_acc c;
        Stats.add tree_acc t)
      pairs;
    (Stats.mean cbs_acc, Stats.mean tree_acc)
  in
  let p_cbs, p_tree = run ~perfect:true in
  let k_cbs, k_tree = run ~perfect:false in
  [
    { estimates = "perfect"; cbs_loss = p_cbs; tree_loss = p_tree; mape = 0.0 };
    { estimates = "kNN"; cbs_loss = k_cbs; tree_loss = k_tree; mape };
  ]

let predictor_run ppf scale =
  let cells = predictor_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: learned execution-time estimates (kNN, Sec 2.3) vs \
     perfect (SLA-B, load 0.9) ===@.";
  Fmt.pf ppf "%-10s %10s %10s %14s@." "estimates" "MAPE %" "CBS" "CBS+SLA-tree";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-10s %10.1f %10.3f %14.3f@." c.estimates c.mape c.cbs_loss
        c.tree_loss)
    cells

(* ------------------------------------------------------------------ *)
(* Per-class differentiation (Gupta et al., Sec 2.3): under SLA-B, who
   gains when the SLA-tree re-ranks the buffer — buyers, employees, or
   both? *)

type fairness_cell = {
  scheduler : string;
  label : string;  (** "buyer" or "employee" *)
  class_loss : float;
  class_late_pct : float;
  n : int;
}

let classify_sla_b ~mu q =
  if Sla.equal q.Query.sla (Sla_profiles.sla_b_employee ~mu) then "employee"
  else "buyer"

let fairness_compute ?(kind = Workloads.Exp) ?(load = 0.9) (scale : Exp_scale.t) =
  let mu = Workloads.nominal_mean_ms kind in
  let rate = Exp_common.cbs_rate kind in
  let schedulers =
    [ Schedulers.fcfs; Schedulers.fcfs_sla_tree; Schedulers.cbs_sla_tree ~rate ]
  in
  (* Scheduler cells fan out (each worker owns its Breakdown); the
     repeats stay serial within a cell because the Breakdown
     accumulates across them in repeat order. *)
  Parallel.map_list
    (fun scheduler ->
      let breakdown =
        Breakdown.create ~classify:(classify_sla_b ~mu) ~warmup_id:scale.warmup
      in
      for repeat = 0 to scale.repeats - 1 do
        let queries =
          Trace.generate
            (Trace.config ~kind ~profile:Workloads.Sla_b ~load ~servers:1
               ~n_queries:scale.n_queries
               ~seed:(Exp_scale.seed scale ~repeat)
               ())
        in
        let metrics = Metrics.create ~warmup_id:scale.warmup () in
        Sim.run
          ~on_complete:(Breakdown.record breakdown)
          ~queries ~n_servers:1
          ~pick_next:(Schedulers.pick scheduler)
          ~dispatch:(Dispatchers.instantiate Dispatchers.round_robin)
          ~metrics ()
      done;
      List.map
        (fun c ->
          let n = Stats.count c.Breakdown.loss in
          {
            scheduler = Schedulers.name scheduler;
            label = c.Breakdown.label;
            class_loss = Stats.mean c.Breakdown.loss;
            class_late_pct =
              (if n = 0 then Float.nan
               else 100.0 *. Float.of_int c.Breakdown.late /. Float.of_int n);
            n;
          })
        (Breakdown.classes breakdown))
    schedulers
  |> List.concat

let fairness_run ppf scale =
  let cells = fairness_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: per-class outcomes under SLA-B (Exp, load 0.9) ===@.";
  Fmt.pf ppf "%-16s %-10s %8s %12s %12s@." "scheduler" "class" "n" "avg loss"
    "late %";
  List.iter
    (fun c ->
      Fmt.pf ppf "%-16s %-10s %8d %12.3f %12.1f@." c.scheduler c.label c.n
        c.class_loss c.class_late_pct)
    cells

(* ------------------------------------------------------------------ *)
(* Heterogeneous servers: Sec 6.2 claims SLA-tree dispatching handles
   servers of different processing power because each server evaluates
   the what-if with its own execution times. A 4-server farm with
   speeds 2x/1x/1x/0.5x. *)

type hetero_cell = { h_disp : string; h_loss : float }

let hetero_speeds = [| 2.0; 1.0; 1.0; 0.5 |]

let hetero_compute ?(kind = Workloads.Exp) (scale : Exp_scale.t) =
  let rate = Exp_common.cbs_rate kind in
  let scheduler = Schedulers.cbs_sla_tree ~rate in
  let planner = Planner.cbs ~rate in
  let n_servers = Array.length hetero_speeds in
  (* Dispatcher cells fan out; repeats within a cell come back in
     repeat order and are folded serially. *)
  Parallel.map_list
    (fun dispatcher ->
      let losses =
        Parallel.map_ordered
          (fun repeat ->
            let queries =
              Trace.generate
                (Trace.config ~kind ~profile:Workloads.Sla_a ~load:0.9
                   ~servers:n_servers ~n_queries:scale.n_queries
                   ~seed:(Exp_scale.seed scale ~repeat)
                   ())
            in
            let metrics = Metrics.create ~warmup_id:scale.warmup () in
            Sim.run ~speeds:hetero_speeds ~queries ~n_servers
              ~pick_next:(Schedulers.pick scheduler)
              ~dispatch:(Dispatchers.instantiate dispatcher)
              ~metrics ();
            Metrics.avg_loss metrics)
          (Array.init scale.repeats Fun.id)
      in
      let acc = Stats.create () in
      Array.iter (Stats.add acc) losses;
      { h_disp = Dispatchers.name dispatcher; h_loss = Stats.mean acc })
    [ Dispatchers.round_robin; Dispatchers.lwl; Dispatchers.sla_tree planner ]

let hetero_run ppf scale =
  let cells = hetero_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: heterogeneous farm, speeds 2x/1x/1x/0.5x (SLA-A, Exp, \
     load 0.9) ===@.";
  Fmt.pf ppf "%-10s %10s@." "dispatcher" "avg loss";
  List.iter (fun c -> Fmt.pf ppf "%-10s %10.3f@." c.h_disp c.h_loss) cells

(* ------------------------------------------------------------------ *)
(* Dropping hopeless queries (footnote 2): the paper keeps queries
   whose penalty is already sunk; the alternative abandons them at
   scheduling points, freeing server time for queries that can still
   earn. *)

type drop_cell = {
  d_load : float;
  d_drop : bool;
  d_avg_profit : float;
  d_dropped : int;
}

let drop_compute ?(loads = [ 0.9; 1.1; 1.4 ]) (scale : Exp_scale.t) =
  let kind = Workloads.Exp in
  let rate = Exp_common.cbs_rate kind in
  let scheduler = Schedulers.cbs_sla_tree ~rate in
  (* Independent (load, drop) cells fan out; per-repeat results come
     back in repeat order and are folded serially. *)
  List.concat_map
    (fun load -> List.map (fun drop -> (load, drop)) [ false; true ])
    loads
  |> Parallel.map_list (fun (load, drop) ->
         let per_repeat =
           Parallel.map_ordered
             (fun repeat ->
               let queries =
                 Trace.generate
                   (Trace.config ~kind ~profile:Workloads.Sla_b ~load ~servers:1
                      ~n_queries:scale.n_queries
                      ~seed:(Exp_scale.seed scale ~repeat)
                      ())
               in
               let metrics = Metrics.create ~warmup_id:scale.warmup () in
               let drop_policy =
                 if drop then Some Sim.drop_past_last_deadline else None
               in
               Sim.run ?drop_policy ~queries ~n_servers:1
                 ~pick_next:(Schedulers.pick scheduler)
                 ~dispatch:(Dispatchers.instantiate Dispatchers.round_robin)
                 ~metrics ();
               (Metrics.avg_profit metrics, Metrics.dropped_count metrics))
             (Array.init scale.repeats Fun.id)
         in
         let profit = Stats.create () and dropped = ref 0 in
         Array.iter
           (fun (p, d) ->
             Stats.add profit p;
             dropped := !dropped + d)
           per_repeat;
         {
           d_load = load;
           d_drop = drop;
           d_avg_profit = Stats.mean profit;
           d_dropped = !dropped / scale.repeats;
         })

let drop_run ppf scale =
  let cells = drop_compute scale in
  Fmt.pf ppf
    "@.=== Ablation: dropping hopeless queries (footnote 2) vs keeping them \
     (SLA-B, Exp, 1 server) ===@.";
  Fmt.pf ppf "%6s %12s %12s %10s@." "load" "policy" "avg profit" "dropped";
  List.iter
    (fun c ->
      Fmt.pf ppf "%6.1f %12s %12.3f %10d@." c.d_load
        (if c.d_drop then "drop sunk" else "keep all")
        c.d_avg_profit c.d_dropped)
    cells

(* ------------------------------------------------------------------ *)
(* Optimality gap (Sec 8.2): SLA-tree scheduling is greedy and not
   globally optimal; on instances small enough for the exact subset-DP
   solver, measure how much is actually left on the table. *)

type optimality_cell = {
  n_queries : int;
  instances : int;
  mean_greedy_ratio : float;  (** greedy profit / optimal profit *)
  worst_greedy_ratio : float;
  mean_fcfs_ratio : float;  (** arrival-order profit / optimal *)
  greedy_optimal_pct : float;  (** instances where greedy hits the optimum *)
}

let random_instance rng n =
  (* A congested micro-buffer: everything arrived already, deadlines
     tight enough that ordering matters. *)
  Array.init n (fun id ->
      let size = 1.0 +. (Prng.float rng *. 19.0) in
      let gain = 0.5 +. (Prng.float rng *. 4.5) in
      let bound = 5.0 +. (Prng.float rng *. 120.0) in
      let arrival = Prng.float rng *. 30.0 in
      Query.make ~id ~arrival ~size ~sla:(Sla.single_step ~bound ~gain) ())

(* Stays serial even under [-j]: all sizes draw their instances from
   one sequential rng, so fanning out would change the draws. *)
let optimality_compute ?(sizes = [ 8; 12 ]) ?(instances = 60) ~seed () =
  let rng = Prng.create seed in
  List.map
    (fun n ->
      let greedy_ratios = Stats.create () in
      let fcfs_ratios = Stats.create () in
      let hits = ref 0 in
      for _ = 1 to instances do
        let qs = random_instance rng n in
        let now = 40.0 in
        let optimal, _ = Offline_optimal.solve ~now qs in
        if optimal > 1e-9 then begin
          let greedy = Offline_optimal.greedy_profit ~now qs in
          let fcfs =
            Offline_optimal.profit_of_order ~now qs (Array.init n Fun.id)
          in
          Stats.add greedy_ratios (greedy /. optimal);
          Stats.add fcfs_ratios (fcfs /. optimal);
          if greedy >= optimal -. 1e-9 then incr hits
        end
      done;
      {
        n_queries = n;
        instances;
        mean_greedy_ratio = Stats.mean greedy_ratios;
        worst_greedy_ratio = Stats.min_value greedy_ratios;
        mean_fcfs_ratio = Stats.mean fcfs_ratios;
        greedy_optimal_pct =
          100.0 *. Float.of_int !hits /. Float.of_int (Stats.count greedy_ratios);
      })
    sizes

let optimality_run ppf ~seed () =
  let cells = optimality_compute ~seed () in
  Fmt.pf ppf
    "@.=== Ablation: greedy vs exact optimum on micro-instances (Sec 8.2) ===@.";
  Fmt.pf ppf "%4s %10s %14s %14s %14s %12s@." "n" "instances" "greedy/opt"
    "worst case" "arrival/opt" "greedy=opt";
  List.iter
    (fun c ->
      Fmt.pf ppf "%4d %10d %14.3f %14.3f %14.3f %11.1f%%@." c.n_queries
        c.instances c.mean_greedy_ratio c.worst_greedy_ratio c.mean_fcfs_ratio
        c.greedy_optimal_pct)
    cells

let run_all ppf scale =
  sched_run ppf scale;
  disp_run ppf scale;
  admission_run ppf scale;
  incr_run ppf ~seed:scale.Exp_scale.base_seed ();
  predictor_run ppf scale;
  fairness_run ppf scale;
  hetero_run ppf scale;
  drop_run ppf scale;
  optimality_run ppf ~seed:scale.Exp_scale.base_seed ()
