(** Elasticity experiment: static-small vs static-large vs the
    reactive SLA-tree autoscaler vs queue-threshold vs the predictive
    (forecast-ahead) autoscaler vs the offline oracle, on cyclic
    workloads, all under one $/server-interval cost model. *)

(** Arrival shape of the workload (same duration-weighted mean load,
    so the static calibration is shared): the smooth diurnal cycle,
    an on/off square wave, or a steady control. *)
type shape = Steady | Diurnal | Square

val shape_name : shape -> string

(** [Diurnal; Square; Steady] — the order the comparison prints. *)
val all_shapes : shape list

val shape_of_string : string -> (shape, string) result

type row = {
  label : string;
  initial : int;  (** initial pool size *)
  profit : float;
  server_time : float;  (** ms*servers actually provisioned *)
  cost : float;
  net : float;  (** profit - cost *)
  peak : int;
  low : int;
  ups : int;
  downs : int;
  avg_loss : float;
  late : float;
}

(** Row labels of the three-way comparison. *)
val reactive_label : string

val predictive_label : string
val oracle_label : string

(** Run every configuration on the same trace (programmatic entry
    point, used by tests and the bench JSON emitter): the two statics,
    the reactive SLA-tree autoscaler, the queue threshold, the
    predictive autoscaler, and the oracle — an offline
    perfect-foresight schedule swept over
    [Forecast.Oracle.rho_candidates], reported as its best-net
    candidate under {!oracle_label}. Default [shape] is [Diurnal]. *)
val rows :
  ?kind:Workloads.kind ->
  ?shape:shape ->
  scale:Exp_scale.t ->
  seed:int ->
  unit ->
  row list

val pp_row : Format.formatter -> row -> unit

(** What to run in single-policy mode. The spec is materialized
    against the generated workload: the predictive policy gets the
    obs sink and optional forecaster spec ({!Forecast.of_spec}) /
    horizon override; the oracle builds its perfect-foresight
    schedule from the trace (utilization [rho], default 0.8). *)
type policy_spec =
  | Spec_static
  | Spec_sla_tree
  | Spec_queue
  | Spec_predictive of { forecast : string option; horizon : int option }
  | Spec_oracle of { rho : float option }

(** Parse a CLI policy name; the optional knobs are attached to the
    specs that use them. *)
val policy_spec_of_string :
  ?forecast:string ->
  ?horizon:int ->
  ?rho:float ->
  string ->
  (policy_spec, string) result

(** Run one policy on the experiment's workload, printing the
    controller summary and the chronological scale-event log. [obs]
    and [timeseries] are threaded into {!Elastic.run} (the CLI's
    [--trace]/[--metrics]/[--timeseries] flags hook in here); for
    [Spec_predictive] the sink also reaches the policy's forecast
    gauges and instants. [faults] is a {!Fault.plan_of_spec} string
    (the [--faults] flag): the plan is realised over the trace's
    arrival span against the initial pool, and a fault summary line
    is printed. Raises [Invalid_argument] on a spec that fails to
    materialize (bad forecaster string, bad rho). *)
val run_policy :
  ?obs:Obs.t ->
  ?timeseries:Obs.Timeseries.t ->
  ?faults:string ->
  ?shape:shape ->
  Format.formatter ->
  policy:policy_spec ->
  initial:int ->
  Exp_scale.t ->
  unit

(** Print the comparison tables, one per {!all_shapes} entry (single
    seed: [scale.base_seed]), each ending with the three-way
    reactive/predictive/oracle summary line. *)
val run : Format.formatter -> Exp_scale.t -> unit
