(** Elasticity experiment: static-small vs static-large vs SLA-tree
    autoscaler vs queue-threshold baseline on a diurnal workload, all
    under one $/server-interval cost model. *)

type row = {
  label : string;
  initial : int;  (** initial pool size *)
  profit : float;
  server_time : float;  (** ms*servers actually provisioned *)
  cost : float;
  net : float;  (** profit - cost *)
  peak : int;
  low : int;
  ups : int;
  downs : int;
  avg_loss : float;
  late : float;
}

(** Run the four configurations on the same trace (programmatic entry
    point, used by tests and the bench JSON emitter). *)
val rows : ?kind:Workloads.kind -> scale:Exp_scale.t -> seed:int -> unit -> row list

val pp_row : Format.formatter -> row -> unit

(** Run one policy on the experiment's workload, printing the
    controller summary and the chronological scale-event log. [obs]
    and [timeseries] are threaded into {!Elastic.run} (the CLI's
    [--trace]/[--metrics]/[--timeseries] flags hook in here).
    [faults] is a {!Fault.plan_of_spec} string (the [--faults] flag):
    the plan is realised over the trace's arrival span against the
    initial pool, and a fault summary line is printed. *)
val run_policy :
  ?obs:Obs.t ->
  ?timeseries:Obs.Timeseries.t ->
  ?faults:string ->
  Format.formatter ->
  policy:Elastic.policy ->
  initial:int ->
  Exp_scale.t ->
  unit

(** Print the comparison table for [scale] (single seed:
    [scale.base_seed]). *)
val run : Format.formatter -> Exp_scale.t -> unit
