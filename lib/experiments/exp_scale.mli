(** Experiment scale control.

    [paper] matches Sec 7.1 (20k queries, 10k warm-up, 10 repeats);
    [default] is a faithful but faster sweep; [smoke] is CI-sized.
    Override with the SLATREE_SCALE environment variable
    ("paper" | "default" | "smoke" | an integer query count). *)

type t = {
  n_queries : int;
  warmup : int;
  repeats : int;
  base_seed : int;
}

val paper : t
val default : t
val smoke : t
val of_string : string -> t option
val name : t -> string
val from_env : unit -> t

(** Deterministic per-repeat seed. *)
val seed : t -> repeat:int -> int
