(* Fixed-width table rendering for the experiment reports, mimicking
   the paper's row/column layout. *)

type t = {
  title : string;
  col_groups : (string * string list) list;
      (** (group header, sub headers), e.g. ("Exp", ["0.5"; "0.7"; "0.9"]) *)
  rows : (string * float array) list;
}

let n_cols t = List.fold_left (fun acc (_, subs) -> acc + List.length subs) 0 t.col_groups

let cell_width = 8
let label_width = 22

let pad s w =
  let n = String.length s in
  if n >= w then s else s ^ String.make (w - n) ' '

let center s w =
  let n = String.length s in
  if n >= w then s
  else begin
    let left = (w - n) / 2 in
    String.make left ' ' ^ s ^ String.make (w - n - left) ' '
  end

let render ppf t =
  let total = n_cols t in
  Fmt.pf ppf "@.=== %s ===@." t.title;
  (* Group header line. *)
  Fmt.pf ppf "%s" (pad "" label_width);
  List.iter
    (fun (group, subs) ->
      let w = cell_width * List.length subs in
      Fmt.pf ppf "%s" (center group w))
    t.col_groups;
  Fmt.pf ppf "@.";
  (* Sub header line. *)
  Fmt.pf ppf "%s" (pad "" label_width);
  List.iter
    (fun (_, subs) -> List.iter (fun s -> Fmt.pf ppf "%s" (center s cell_width)) subs)
    t.col_groups;
  Fmt.pf ppf "@.%s@." (String.make (label_width + (cell_width * total)) '-');
  List.iter
    (fun (label, cells) ->
      Fmt.pf ppf "%s" (pad label label_width);
      Array.iter
        (fun v ->
          let s =
            if Float.is_nan v then "-"
            else if Float.abs v < 10.0 then Printf.sprintf "%.3f" v
            else Printf.sprintf "%.1f" v
          in
          Fmt.pf ppf "%s" (center s cell_width))
        cells;
      Fmt.pf ppf "@.")
    t.rows;
  Fmt.pf ppf "@."
