(** Trace-driven experiments over real workload logs (SWF).

    The table-2-style scheduling x dispatching grid — plus an elastic
    (autoscaled pool) variant and fault-injected resilience variants —
    replayed over a Standard Workload Format log through
    {!Sla_synth}. Every run streams: queries are synthesized on
    demand and injected into a {!Sim.session} one at a time, so a
    million-job log (or a fixture tiled to one) flows end-to-end in
    constant memory.

    Determinism: cells re-stream the file independently and the
    synthesis is deterministic in (file, flags, seed), so the grid
    fans out across the ambient {!Parallel} pool with bit-identical
    results at any [-j N]. *)

type cfg = {
  path : string;  (** the SWF log *)
  synth : Sla_synth.config;
  tiles : int;  (** replay the log this many times end-to-end *)
  max_jobs : int option;  (** truncate the stream *)
  servers : int;
  warmup_frac : float;  (** leading fraction of kept jobs not measured *)
}

val cfg :
  ?synth:Sla_synth.config ->
  ?tiles:int ->
  ?max_jobs:int ->
  ?servers:int ->
  ?warmup_frac:float ->
  path:string ->
  unit ->
  cfg

(** Streaming pre-pass: synthesis statistics (kept/dropped/clamped
    counts, span, mean size) without retaining any query. Shared by
    the grid (CBS rate, warm-up size and fault horizon derive from
    it). *)
val inspect : cfg -> Sla_synth.stats

type cell = {
  sched : string;
  disp : string;
  avg_loss : float;
  avg_profit : float;
  late : float;
  rejected : int;
}

type variant_row = {
  label : string;
  profit : float;
  v_avg_loss : float;
  v_late : float;
  lost : int;
  servers_note : string;
}

(** The scheduling x dispatching grid (12 cells), parallel-safe. *)
val grid : cfg -> cell list

(** Elastic + resilience variants (autoscaled pool; moderate and
    severe fault storms on a static pool), parallel-safe. *)
val variants : cfg -> variant_row list

(** Full report: pre-pass summary, the grid, the variants. Output
    contains no wall-clock times — it is byte-identical across [-j]. *)
val run : ?variants:bool -> Format.formatter -> cfg -> unit
