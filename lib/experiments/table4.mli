(** Table 4 (Sec 7.4): capacity planning — per-query margin of one
    extra server, ground truth vs SLA-tree estimate (SLA-A,
    load 0.9). *)

val default_servers : int list
val load : float

type cell = {
  kind : Workloads.kind;
  servers : int;
  ground_truth : float;
  estimate : float;
}

val compute :
  ?kinds:Workloads.kind list -> ?servers:int list -> Exp_scale.t -> cell list

val to_report : ?servers:int list -> cell list -> Report.t
val run : Format.formatter -> Exp_scale.t -> unit
