(** Table 6 (Sec 7.5): dispatching robustness to estimation error
    (5 servers, load 0.9). *)

val default_sigmas : float list
val load : float
val servers : int
val dispatchers : Exp_common.disp_kind list

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  sigma2 : float;
  disp : Exp_common.disp_kind;
  avg_loss : float;
}

val compute :
  ?profiles:Workloads.sla_profile list ->
  ?kinds:Workloads.kind list ->
  ?sigmas:float list ->
  Exp_scale.t ->
  cell list

val to_report : ?sigmas:float list -> cell list -> Report.t
val run : Format.formatter -> Exp_scale.t -> unit
