(** Table 5 (Sec 7.5): scheduling robustness to estimation error. *)

val default_sigmas : float list
val load : float
val schedulers : Exp_common.sched_kind list

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  sigma2 : float;
  sched : Exp_common.sched_kind;
  avg_loss : float;
}

val error_of : float -> Estimate_error.t

val compute :
  ?profiles:Workloads.sla_profile list ->
  ?kinds:Workloads.kind list ->
  ?sigmas:float list ->
  Exp_scale.t ->
  cell list

val to_report : ?sigmas:float list -> cell list -> Report.t
val run : Format.formatter -> Exp_scale.t -> unit
