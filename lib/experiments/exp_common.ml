(* Shared experiment plumbing: named policy sets and repeat-averaged
   simulation runs. *)

type sched_kind = Fcfs | Fcfs_tree | Cbs | Cbs_tree

let sched_name = function
  | Fcfs -> "FCFS"
  | Fcfs_tree -> "FCFS+SLA-tree"
  | Cbs -> "CBS"
  | Cbs_tree -> "CBS+SLA-tree"

(* CBS's memoryless waiting-time rate: one over the workload's mean
   execution time. *)
let cbs_rate kind = 1.0 /. Workloads.nominal_mean_ms kind

let scheduler_of kind wl =
  match kind with
  | Fcfs -> Schedulers.fcfs
  | Fcfs_tree -> Schedulers.fcfs_sla_tree
  | Cbs -> Schedulers.cbs ~rate:(cbs_rate wl)
  | Cbs_tree -> Schedulers.cbs_sla_tree ~rate:(cbs_rate wl)

type disp_kind = Lwl_cbs | Lwl_tree_sched | Tree_tree

let disp_name = function
  | Lwl_cbs -> "LWL / CBS"
  | Lwl_tree_sched -> "LWL / CBS+SLA-tree"
  | Tree_tree -> "SLA-tree / CBS+SLA-tree"

(* Dispatching experiments (Sec 7.3) keep CBS as the base scheduling;
   the SLA-tree dispatcher plans buffers with the CBS order. *)
let dispatch_setup kind wl =
  let rate = cbs_rate wl in
  let planner = Planner.cbs ~rate in
  match kind with
  | Lwl_cbs -> (Dispatchers.lwl, Schedulers.cbs ~rate)
  | Lwl_tree_sched -> (Dispatchers.lwl, Schedulers.cbs_sla_tree ~rate)
  | Tree_tree -> (Dispatchers.sla_tree planner, Schedulers.cbs_sla_tree ~rate)

(* One simulation run; returns the metrics. Stateful schedulers (the
   incremental SLA-tree variant) get their per-run server-event hook
   installed here. *)
let run_once ~trace_cfg ~n_servers ~scheduler ~dispatcher ~warmup_id =
  let queries = Trace.generate trace_cfg in
  let metrics = Metrics.create ~warmup_id () in
  let pick_next, hook = Schedulers.instantiate scheduler in
  Sim.run ?on_server_event:hook ~queries ~n_servers ~pick_next
    ~dispatch:(Dispatchers.instantiate dispatcher)
    ~metrics ();
  metrics

(* Average loss per query over the scale's repeats (fresh seed each).
   Repeats are independent — each builds its own trace, metrics and
   scheduler state from its own seed — so they fan out across the
   ambient [Parallel] pool; the per-repeat losses come back in repeat
   order and are folded serially, keeping the reported mean
   bit-identical to the serial run whatever the worker count. *)
let avg_loss_over_repeats (scale : Exp_scale.t) ~make_trace_cfg ~n_servers
    ~scheduler ~dispatcher =
  let losses =
    Parallel.map_ordered
      (fun repeat ->
        let trace_cfg = make_trace_cfg ~seed:(Exp_scale.seed scale ~repeat) in
        let metrics =
          run_once ~trace_cfg ~n_servers ~scheduler ~dispatcher
            ~warmup_id:scale.warmup
        in
        Metrics.avg_loss metrics)
      (Array.init scale.repeats Fun.id)
  in
  let acc = Stats.create () in
  Array.iter (Stats.add acc) losses;
  Stats.mean acc
