(** Substrate validation: simulated FCFS SLA-A loss vs the analytic
    M/M/m response tail on the exponential workload. *)

type row = {
  servers : int;
  load : float;
  simulated : float;
  analytic : float;
}

val default_loads : float list
val default_servers : int list

val compute : ?loads:float list -> ?servers:int list -> Exp_scale.t -> row list
val run : Format.formatter -> Exp_scale.t -> unit
