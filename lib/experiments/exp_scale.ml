(* Experiment scale. The paper runs 20k queries (10k warm-up) with 10
   repeats per cell (Sec 7.1). That is minutes of wall clock for the
   full table sweep, so the default here is a reduced-but-faithful
   scale; set SLATREE_SCALE=paper to reproduce the original protocol,
   or SLATREE_SCALE=smoke for CI-sized runs. *)

type t = {
  n_queries : int;  (** per run, warm-up included *)
  warmup : int;  (** queries excluded from measurement *)
  repeats : int;  (** independent seeds averaged per cell *)
  base_seed : int;
}

let paper = { n_queries = 20_000; warmup = 10_000; repeats = 10; base_seed = 20110322 }
let default = { n_queries = 6_000; warmup = 3_000; repeats = 3; base_seed = 20110322 }
let smoke = { n_queries = 800; warmup = 400; repeats = 2; base_seed = 20110322 }

let of_string = function
  | "paper" -> Some paper
  | "default" -> Some default
  | "smoke" -> Some smoke
  | s -> begin
    (* An integer selects n_queries directly (half of it warms up). *)
    match int_of_string_opt s with
    | Some n when n >= 10 ->
      Some { n_queries = n; warmup = n / 2; repeats = 3; base_seed = 20110322 }
    | Some _ | None -> None
  end

let name t =
  if t = paper then "paper"
  else if t = default then "default"
  else if t = smoke then "smoke"
  else Printf.sprintf "custom(n=%d)" t.n_queries

let from_env () =
  match Sys.getenv_opt "SLATREE_SCALE" with
  | None -> default
  | Some s -> begin
    match of_string s with
    | Some t -> t
    | None ->
      Printf.eprintf "SLATREE_SCALE=%s not understood; using default\n%!" s;
      default
  end

(* Per-repeat seed, deterministic in (base_seed, repeat index). *)
let seed t ~repeat = t.base_seed + (repeat * 7919)
