(* Resilience experiment (beyond the paper, chaos-engineering style):
   the same steady workload replayed under scripted infrastructure
   faults — full crashes (buffered work orphaned, re-injected as
   retries that keep their original SLA clock) and brownouts — across
   dispatchers (RR / LWL / SLA-tree) and pool managers (static /
   SLA-tree autoscaler).

   The question: profit-oriented dispatch earns more in fair weather;
   does that edge survive (or grow) when servers fail under it? Each
   configuration is compared to its own fault-free baseline, so the
   reported drop isolates the cost of the faults from the absolute
   quality of the policy. All fault plans share one seed and the
   workload stream is untouched by enabling them ([Prng.split_key]),
   so every cell sees the same queries and the same fault instants. *)

type row = {
  pool : string;  (** "static" or "autoscale" *)
  dispatcher : string;
  plan : string;
  profit : float;  (** total measured profit, $ *)
  drop : float;  (** profit lost vs the fault-free baseline, fraction *)
  avg_loss : float;
  late : float;
  lost : int;  (** queries lost to crashes (retry cap / no requeue) *)
  retries : int;
  crashes : int;
  degrades : int;
  skipped : int;
  mttr : float;  (** mean time-to-recover, ms; NaN when no crash resolved *)
}

let servers = 4
let load = 0.9
let kind = Workloads.Exp

(* Expected arrival span of the steady trace — the fault-plan horizon
   (the model needs it to scale MTTF to the run length). *)
let horizon ~(scale : Exp_scale.t) =
  Float.of_int scale.Exp_scale.n_queries
  *. Workloads.nominal_mean_ms kind
  /. (load *. Float.of_int servers)

let workload ~(scale : Exp_scale.t) =
  Trace.generate
    (Trace.config ~kind ~profile:Workloads.Sla_b ~load ~servers
       ~n_queries:scale.Exp_scale.n_queries ~seed:scale.Exp_scale.base_seed ())

let plan_specs = [ "none"; "moderate"; "severe" ]

let dispatchers =
  [
    ("RR", fun () -> Dispatchers.round_robin);
    ("LWL", fun () -> Dispatchers.lwl);
    ("SLA-tree", fun () -> Dispatchers.fcfs_sla_tree_incr ());
  ]

(* One static-pool run: fixed scheduler (incremental FCFS SLA-tree),
   the dispatcher under test, the fault plan wired in through the
   simulator's timers. *)
let run_static ?obs ~queries ~warmup_id ~plan ~dispatcher () =
  let injector = Fault.create ?obs ~plan () in
  let metrics = Metrics.create ~warmup_id () in
  let pick_next, hook =
    Schedulers.instantiate ?obs Schedulers.fcfs_sla_tree_incr
  in
  let on_server_event ~sid ~now ev =
    Fault.on_server_event injector ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  Sim.run ?obs
    ~timers:(Fault.timers injector)
    ~on_server_event ~queries ~n_servers:servers ~pick_next
    ~dispatch:(Dispatchers.instantiate ?obs dispatcher)
    ~metrics ();
  Fault.finalize injector metrics;
  (metrics, Fault.stats injector)

(* The autoscaled variant: same plan against the elastic harness
   (which owns dispatcher and scheduler — incremental SLA-tree), the
   injector riding its [timers]/[on_server_event] passthrough. *)
let elastic_config ~(scale : Exp_scale.t) =
  let interval = horizon ~scale /. 120.0 in
  Elastic.config ~interval ~cost_per_interval:(0.0225 *. interval)
    ~boot_delay:(interval /. 2.0) ~cooldown:(2.0 *. interval) ~min_servers:2
    ~max_servers:(2 * servers) ()

let run_elastic ?obs ~queries ~warmup_id ~plan ~scale () =
  let injector = Fault.create ?obs ~plan () in
  let metrics, _summary =
    Elastic.run ?obs
      ~timers:(Fault.timers injector)
      ~on_server_event:(Fault.on_server_event injector)
      ~config:(elastic_config ~scale) ~queries ~n_servers:servers ~warmup_id ()
  in
  Fault.finalize injector metrics;
  (metrics, Fault.stats injector)

(* One row aggregates the cell's repeats (one per plan seed): means of
   the profit metrics, counts averaged and rounded, mean recovery time
   over the repeats that resolved any crash. *)
let make_row ~pool ~dispatcher ~plan ~baseline_profit results =
  let fn = Float.of_int (List.length results) in
  let meanf f = List.fold_left (fun a x -> a +. f x) 0.0 results /. fn in
  let meani f =
    Float.to_int
      (Float.round (Float.of_int (List.fold_left (fun a x -> a + f x) 0 results) /. fn))
  in
  let profit = meanf (fun (m, _) -> Metrics.total_profit m) in
  let drop =
    match baseline_profit with
    | Some base when Float.abs base > 1e-9 -> (base -. profit) /. base
    | _ -> 0.0
  in
  let mttrs =
    List.filter_map
      (fun (_, s) ->
        let m = Fault.mean_time_to_recover s in
        if Float.is_nan m then None else Some m)
      results
  in
  {
    pool;
    dispatcher;
    plan;
    profit;
    drop;
    avg_loss = meanf (fun (m, _) -> Metrics.avg_loss m);
    late = meanf (fun (m, _) -> Metrics.late_fraction m);
    lost = meani (fun (m, _) -> Metrics.lost_count m);
    retries = meani (fun (_, s) -> s.Fault.retries);
    crashes = meani (fun (_, s) -> s.Fault.crashes);
    degrades = meani (fun (_, s) -> s.Fault.degrades);
    skipped = meani (fun (_, s) -> s.Fault.skipped);
    mttr =
      (match mttrs with
      | [] -> Float.nan
      | l ->
        List.fold_left ( +. ) 0.0 l /. Float.of_int (List.length l));
  }

(* The full grid. Each (pool, dispatcher, plan) cell is independent:
   the fault-free cell runs once (no randomness to average), each
   faulted cell averages [scale.repeats] independent plan seeds over
   the identical workload, and every cell's drop is measured against
   its own group's fault-free profit — resolved after all cells are
   computed, so cells (and the plan seeds within one) can fan out
   across the ambient pool. With an enabled [obs] sink every run would
   append to the same registry and trace ring, so the grid stays
   serial in that case. *)
let rows ?obs ~(scale : Exp_scale.t) () =
  let queries = workload ~scale in
  let warmup_id = scale.Exp_scale.warmup in
  let horizon = horizon ~scale in
  let specs_of plan =
    if plan = "none" then [ "none" ]
    else
      List.init scale.Exp_scale.repeats (fun repeat ->
          Printf.sprintf "%s:%d" plan (Exp_scale.seed scale ~repeat))
  in
  let fan : 'a 'b. ('a -> 'b) -> 'a list -> 'b list =
   fun f l -> if Option.is_some obs then List.map f l else Parallel.map_list f l
  in
  let cells =
    List.concat_map
      (fun (name, disp) ->
        List.map
          (fun plan_name ->
            ( "static",
              name,
              plan_name,
              fun ~plan ->
                run_static ?obs ~queries ~warmup_id ~plan ~dispatcher:(disp ()) ()
            ))
          plan_specs)
      dispatchers
    @ List.map
        (fun plan_name ->
          ( "autoscale",
            "SLA-tree",
            plan_name,
            fun ~plan -> run_elastic ?obs ~queries ~warmup_id ~plan ~scale () ))
        plan_specs
  in
  let computed =
    fan
      (fun (pool, dname, plan_name, run) ->
        let results =
          fan
            (fun spec ->
              run ~plan:(Fault.plan_of_spec spec ~horizon ~n_servers:servers))
            (specs_of plan_name)
        in
        (pool, dname, plan_name, results))
      cells
  in
  (* Mean profit over a cell's results, in the same fold order as
     [make_row] — the group baseline is its "none" cell's profit. *)
  let mean_profit results =
    List.fold_left (fun a (m, _) -> a +. Metrics.total_profit m) 0.0 results
    /. Float.of_int (List.length results)
  in
  List.map
    (fun (pool, dname, plan_name, results) ->
      let baseline_profit =
        if plan_name = "none" then None
        else
          List.find_map
            (fun (p, d, pl, res) ->
              if p = pool && d = dname && pl = "none" then
                Some (mean_profit res)
              else None)
            computed
      in
      make_row ~pool ~dispatcher:dname ~plan:plan_name ~baseline_profit results)
    computed

let pp_row ppf r =
  Fmt.pf ppf "%-9s %-8s %-8s %9.0f %7.1f%% %8.3f %6.1f%% %4d %7d %3d/%-3d %8s"
    r.pool r.dispatcher r.plan r.profit (100.0 *. r.drop) r.avg_loss
    (100.0 *. r.late) r.lost r.retries r.crashes r.degrades
    (if Float.is_nan r.mttr then "-" else Fmt.str "%.0f" r.mttr)

(* The headline claim checked by CI: under the moderate plan the
   SLA-tree dispatcher's relative profit drop is no worse than RR's
   and LWL's. Cells are means over a handful of plan seeds, and on a
   homogeneous farm the tree and LWL make near-identical choices
   (the tree falls back to LWL on profit ties), so differences below
   a quarter of a percentage point are plan-seed noise, not policy —
   the tolerance treats those as a tie. *)
let drop_tolerance = 0.0025

let verdict rows =
  let drop_of disp =
    List.find_opt
      (fun r -> r.pool = "static" && r.dispatcher = disp && r.plan = "moderate")
      rows
    |> Option.map (fun r -> r.drop)
  in
  match (drop_of "SLA-tree", drop_of "RR", drop_of "LWL") with
  | Some tree, Some rr, Some lwl ->
    Some
      ( tree <= rr +. drop_tolerance && tree <= lwl +. drop_tolerance,
        tree,
        rr,
        lwl )
  | _ -> None

let run ppf (scale : Exp_scale.t) =
  Fmt.pf ppf
    "@.=== Resilience: steady %s/SLA-B workload under fault injection \
     (%d queries, load %.2f, %d servers) ===@."
    (Workloads.kind_name kind) scale.Exp_scale.n_queries load servers;
  Fmt.pf ppf
    "plans over horizon %.0f ms, %d seeds per cell: moderate (brownouts \
     only, ~1 per server, quick repairs), severe (crashes, MTTF=horizon/3, \
     repairs 2x slower); retries keep the original SLA clock@."
    (horizon ~scale) scale.Exp_scale.repeats;
  Fmt.pf ppf "%-9s %-8s %-8s %9s %8s %8s %7s %4s %7s %7s %8s@." "pool"
    "dispatch" "plan" "profit" "drop" "avg-loss" "late" "lost" "retries"
    "crash/deg" "mttr";
  let rs = rows ~scale () in
  List.iter (fun r -> Fmt.pf ppf "%a@." pp_row r) rs;
  match verdict rs with
  | Some (ok, tree, rr, lwl) ->
    Fmt.pf ppf
      "moderate plan: SLA-tree dispatch drops %.1f%% of its fault-free profit \
       (RR %.1f%%, LWL %.1f%%) — %s.@."
      (100.0 *. tree) (100.0 *. rr) (100.0 *. lwl)
      (if ok then "no worse than either baseline" else "WORSE than a baseline")
  | None -> ()
