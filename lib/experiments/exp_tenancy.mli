(** Multi-tenant economics experiment: the admission-control grid.

    One synthetic workload (steady and bursty-overloaded variants) is
    tagged by a {!Tenancy.registry} and replayed over homogeneous and
    heterogeneous (mixed-speed) pools, with the probe-priced admission
    controller off and on — 8 cells. The report adds per-tenant
    attainment, Jain fairness and SLO burn-rate windows for the
    overloaded cells, plus an elastic variant where the autoscaler
    chooses {e which} server type to boot ({!Elastic.config}[.types])
    under quantum round-up billing.

    Everything is deterministic in the config seed and independent of
    [-j]: cells run under [Parallel.map_list], tenant assignment is
    keyed per query id, and no wall-clock reaches the output. *)

type cfg = {
  kind : Workloads.kind;
  load : float;  (** steady-state utilization of the uniform pool *)
  burst_high : float;  (** bursty cells: peak load multiplier *)
  n_queries : int;
  servers : int;
  theta : float;  (** admission margin, $ *)
  warmup_frac : float;
  seed : int;
}

val cfg :
  ?kind:Workloads.kind ->
  ?load:float ->
  ?burst_high:float ->
  ?n_queries:int ->
  ?servers:int ->
  ?theta:float ->
  ?warmup_frac:float ->
  ?seed:int ->
  unit ->
  cfg

(** One grid cell: a (admission x pool x workload) run. [profit] is
    the summed measured per-tenant profit; [turned_away] the ideal
    profit of rejected queries. *)
type cell = {
  admission : bool;
  pool : string;
  workload : string;
  profit : float;
  turned_away : float;
  rejected : int;
  degraded : int;
  late : float;
  fairness : float;
  report : Tenancy.report;
}

(** The registry all cells are tagged with (three tenants over the
    default gold/silver/bronze ladder). *)
val registry : unit -> Tenancy.registry

(** The 8 cells, in a fixed (workload, pool, admission) order;
    bit-identical at any [-j]. Each cell checks the
    [offered = admitted + rejected] balance and raises on violation. *)
val grid : cfg -> cell list

type typed_row = {
  t_profit : float;
  t_cost : float;  (** total rent, typed quantum bills included *)
  t_typed_cost : float;
  t_boots : (string * int) list;  (** boots per server type *)
  t_peak_pool : int;
}

(** The elastic variant: bursty workload, admission on, autoscaler
    choosing between a small and a large server type. *)
val run_typed : cfg -> typed_row

val run : Format.formatter -> cfg -> unit
