(** Ablation studies beyond the paper's tables: the SLA-tree
    enhancement over every baseline scheduler, the full dispatching
    baseline ladder (Random/RR/SITA/LWL), admission control at
    overload, the incremental SLA-tree vs full rebuilds, and learned
    (kNN) execution-time estimates vs perfect ones. *)

type sched_cell = {
  base_name : string;
  kind : Workloads.kind;
  base_loss : float;
  tree_loss : float;
}

val sched_compute :
  ?kinds:Workloads.kind list -> ?load:float -> Exp_scale.t -> sched_cell list

val sched_run : Format.formatter -> Exp_scale.t -> unit

type disp_cell = { disp_name : string; kind : Workloads.kind; loss : float }

val disp_compute :
  ?kinds:Workloads.kind list -> ?servers:int -> Exp_scale.t -> disp_cell list

val disp_run : Format.formatter -> Exp_scale.t -> unit

type admission_cell = {
  load : float;
  admission : bool;
  avg_loss : float;
  avg_profit : float;
  rejected : int;
}

val admission_compute : ?loads:float list -> Exp_scale.t -> admission_cell list
val admission_run : Format.formatter -> Exp_scale.t -> unit

type incr_result = {
  buffer_len : int;
  rebuild_ms_per_cycle : float;
  incremental_ms_per_cycle : float;
  rebuilds : int;
}

val incr_compute : ?buffer_sizes:int list -> seed:int -> unit -> incr_result list
val incr_run : Format.formatter -> seed:int -> unit -> unit

type predictor_cell = {
  estimates : string;
  cbs_loss : float;
  tree_loss : float;
  mape : float;
}

val predictor_compute : Exp_scale.t -> predictor_cell list
val predictor_run : Format.formatter -> Exp_scale.t -> unit

type fairness_cell = {
  scheduler : string;
  label : string;
  class_loss : float;
  class_late_pct : float;
  n : int;
}

val fairness_compute :
  ?kind:Workloads.kind -> ?load:float -> Exp_scale.t -> fairness_cell list

val fairness_run : Format.formatter -> Exp_scale.t -> unit

type hetero_cell = { h_disp : string; h_loss : float }

val hetero_speeds : float array
val hetero_compute : ?kind:Workloads.kind -> Exp_scale.t -> hetero_cell list
val hetero_run : Format.formatter -> Exp_scale.t -> unit

type drop_cell = {
  d_load : float;
  d_drop : bool;
  d_avg_profit : float;
  d_dropped : int;
}

val drop_compute : ?loads:float list -> Exp_scale.t -> drop_cell list
val drop_run : Format.formatter -> Exp_scale.t -> unit

type optimality_cell = {
  n_queries : int;
  instances : int;
  mean_greedy_ratio : float;
  worst_greedy_ratio : float;
  mean_fcfs_ratio : float;
  greedy_optimal_pct : float;
}

val optimality_compute :
  ?sizes:int list -> ?instances:int -> seed:int -> unit -> optimality_cell list

val optimality_run : Format.formatter -> seed:int -> unit -> unit

(** Every ablation in sequence. *)
val run_all : Format.formatter -> Exp_scale.t -> unit
