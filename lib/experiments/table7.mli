(** Table 7 (Sec 8.2): the greedy non-optimality counterexample. *)

type result = {
  original_profit : float;
  greedy_profit : float;
  optimal_profit : float;
  greedy_keeps_head : bool;
}

val queries : unit -> Query.t array
val compute : unit -> result
val run : Format.formatter -> unit -> unit
