(* Multi-tenant economics: the admission-control grid. See
   exp_tenancy.mli.

   The economics under test: when the pool is overloaded, completing
   every query means completing doomed queries — work that arrives at
   a backlog deep enough that it can only finish past its last
   deadline, earning the penalty. The admission controller prices each
   arrival with the SLA-tree postpone probe (its own attainable profit
   at its planned slot minus the postpone loss inflicted on the work
   behind it) and refuses the negative-net tail, so the admission-on
   cells should net strictly more measured profit than admission-off
   on the bursty workloads. *)

type cfg = {
  kind : Workloads.kind;
  load : float;
  burst_high : float;
  n_queries : int;
  servers : int;
  theta : float;
  warmup_frac : float;
  seed : int;
}

let cfg ?(kind = Workloads.Exp) ?(load = 0.9) ?(burst_high = 2.5)
    ?(n_queries = 4000) ?(servers = 4) ?(theta = 0.0) ?(warmup_frac = 0.1)
    ?(seed = 42) () =
  if load <= 0.0 then invalid_arg "Exp_tenancy.cfg: load must be positive";
  if burst_high <= 0.0 then
    invalid_arg "Exp_tenancy.cfg: burst_high must be positive";
  if n_queries < 1 then invalid_arg "Exp_tenancy.cfg: n_queries must be >= 1";
  if servers < 1 then invalid_arg "Exp_tenancy.cfg: servers must be >= 1";
  if warmup_frac < 0.0 || warmup_frac >= 1.0 then
    invalid_arg "Exp_tenancy.cfg: warmup_frac must be in [0, 1)";
  { kind; load; burst_high; n_queries; servers; theta; warmup_frac; seed }

let registry () = Tenancy.default_registry ()

(* ------------------------------------------------------------------ *)
(* Workloads and pools *)

let trace_config c =
  Trace.config ~kind:c.kind ~profile:Workloads.Sla_a ~load:c.load
    ~servers:c.servers ~n_queries:c.n_queries ~seed:c.seed ()

(* The tenant registry replaces every SLA at assignment (class ladder
   x price tier), so the generator only contributes arrivals, sizes
   and estimates. *)
let workloads c reg =
  let tcfg = trace_config c in
  let steady = Trace.generate tcfg in
  let period =
    (* about an eighth of the nominal span, so several full burst
       cycles fit in the run *)
    Float.of_int c.n_queries /. Trace.arrival_rate tcfg /. 8.0
  in
  let bursty =
    Bursty.generate tcfg
      (Bursty.square ~period ~duty:0.4 ~low:0.5 ~high:c.burst_high)
  in
  [ ("steady", Tenancy.assign reg steady); ("bursty", Tenancy.assign reg bursty) ]

(* Same aggregate capacity either way: [mixed] alternates fast and
   slow machines summing to [servers] stock speeds. *)
let pools c =
  [
    ("uniform", Array.make c.servers 1.0);
    ("mixed", Array.init c.servers (fun i -> if i land 1 = 0 then 1.5 else 0.5));
  ]

(* ------------------------------------------------------------------ *)
(* One cell *)

type cell = {
  admission : bool;
  pool : string;
  workload : string;
  profit : float;
  turned_away : float;
  rejected : int;
  degraded : int;
  late : float;
  fairness : float;
  report : Tenancy.report;
}

let response_cap = 65_536

let warmup_id c = Float.to_int (c.warmup_frac *. Float.of_int c.n_queries)

(* Run one tagged workload over one pool, the admission controller off
   or on, sampling the per-tenant timeseries on a ticker so the report
   can read burn-rate windows off it. *)
let run_cell c reg ~queries ~speeds ~admission_on =
  let warmup_id = warmup_id c in
  let acct = Tenancy.Acct.create reg ~warmup_id in
  let ts = Tenancy.Acct.timeseries reg in
  let span_est = queries.(Array.length queries - 1).Query.arrival in
  let sample_every = Float.max 1e-6 (span_est /. 240.0) in
  let metrics = Metrics.create ~response_cap ~warmup_id () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let on_server_event ~sid ~now ev =
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  let admit =
    if admission_on then Tenancy.admit (Tenancy.admission ~theta:c.theta reg ~acct ())
    else fun _sim q ->
      (* admission off: every query is waved through, but the acct
         still sees the offered/admitted flow *)
      Tenancy.Acct.on_offered acct q;
      Tenancy.Acct.on_admitted acct q;
      Sim.Admit
  in
  let sess =
    Sim.session ~admit
      ~on_complete:(Tenancy.Acct.on_complete acct)
      ~on_server_event ~speeds
      ~ticker:(sample_every, fun sim -> Tenancy.Acct.sample acct ts ~now:(Sim.now sim))
      ~n_servers:c.servers ~pick_next
      ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
      ~metrics ()
  in
  Array.iter (Sim.inject sess) queries;
  Sim.drain sess;
  let span = Sim.now (Sim.sim sess) in
  Tenancy.Acct.sample acct ts ~now:span;
  if Metrics.offered_count metrics
     <> Metrics.admitted_count metrics + Metrics.rejected_count metrics
  then
    failwith "Exp_tenancy: offered <> admitted + rejected";
  let report = Tenancy.report ~timeseries:ts ~span acct in
  {
    admission = admission_on;
    pool = "";
    workload = "";
    profit = report.Tenancy.rep_profit;
    turned_away = report.Tenancy.rep_rejected_value;
    rejected = Metrics.rejected_count metrics;
    degraded =
      List.fold_left (fun a r -> a + r.Tenancy.r_degraded) 0 report.Tenancy.rows;
    late = Metrics.late_fraction metrics;
    fairness = report.Tenancy.fairness;
    report;
  }

let grid c =
  let reg = registry () in
  let tagged = workloads c reg in
  List.concat_map
    (fun (wname, queries) ->
      List.concat_map
        (fun (pname, speeds) ->
          [ (wname, queries, pname, speeds, false);
            (wname, queries, pname, speeds, true) ])
        (pools c))
    tagged
  |> Parallel.map_list (fun (wname, queries, pname, speeds, admission_on) ->
         let cell = run_cell c reg ~queries ~speeds ~admission_on in
         { cell with pool = pname; workload = wname })

(* ------------------------------------------------------------------ *)
(* The elastic variant: the autoscaler chooses WHAT to boot *)

type typed_row = {
  t_profit : float;
  t_cost : float;
  t_typed_cost : float;
  t_boots : (string * int) list;
  t_peak_pool : int;
}

(* Price scale derived from the registry's class ladder, as in the
   trace experiments: half the workload's potential profit rate per
   provisioned server-interval. *)
let elastic_config c reg ~span =
  let interval = Float.max 1e-6 (span /. 120.0) in
  let classes = (reg : Tenancy.registry).Tenancy.synth.Sla_synth.classes in
  let w = Array.fold_left (fun a cl -> a + cl.Sla_synth.weight) 0 classes in
  let mean_top_gain =
    Array.fold_left
      (fun a cl -> a +. (Float.of_int cl.Sla_synth.weight *. cl.Sla_synth.gains.(0)))
      0.0 classes
    /. Float.of_int w
  in
  let profit_rate = mean_top_gain *. Float.of_int c.n_queries /. span in
  (* Cheaper than the trace experiments' half-rate rent: tier scaling
     (bronze pays 0.6x) and burst overload both cut realizable profit
     well below the ladder's potential, and a price that eats the whole
     margin would make every boot a loss by construction. *)
  let price = 0.15 *. profit_rate /. Float.of_int c.servers *. interval in
  let types =
    [|
      Elastic.server_type ~name:"small" ~price ~quantum:interval ();
      Elastic.server_type ~name:"large" ~speed:2.0
        ~boot_delay:(interval /. 4.0)
        ~price:(2.2 *. price) ~quantum:interval ();
    |]
  in
  Elastic.config ~interval ~cost_per_interval:price
    ~boot_delay:(interval /. 2.0)
    ~cooldown:(2.0 *. interval)
    ~min_servers:(max 1 (c.servers / 2))
    ~max_servers:(2 * c.servers) ~types ()

let run_typed c =
  let reg = registry () in
  let queries =
    match List.assoc_opt "bursty" (workloads c reg) with
    | Some qs -> qs
    | None -> assert false
  in
  let warmup_id = warmup_id c in
  let span_est = queries.(Array.length queries - 1).Query.arrival in
  let ecfg = elastic_config c reg ~span:span_est in
  let ctl = Elastic.create ecfg Elastic.sla_tree_policy ~initial_servers:c.servers in
  let acct = Tenancy.Acct.create reg ~warmup_id in
  let metrics = Metrics.create ~response_cap ~warmup_id () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let last_event = ref 0.0 in
  let on_server_event ~sid ~now ev =
    if now > !last_event then last_event := now;
    Elastic.on_server_event ctl ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  let sess =
    Sim.session
      ~admit:(Tenancy.admit (Tenancy.admission ~theta:c.theta reg ~acct ()))
      ~on_dispatch:(fun ~now q d -> Elastic.on_dispatch ctl ~now q d)
      ~on_complete:(Tenancy.Acct.on_complete acct)
      ~on_server_event
      ~ticker:(ecfg.Elastic.interval, Elastic.tick ctl)
      ~n_servers:c.servers ~pick_next
      ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
      ~metrics ()
  in
  Array.iter (Sim.inject sess) queries;
  Sim.drain sess;
  Elastic.finalize ctl ~now:!last_event;
  let s = Elastic.summary ctl in
  {
    t_profit = Tenancy.Acct.total_profit acct;
    t_cost = s.Elastic.cost;
    t_typed_cost = s.Elastic.typed_cost;
    t_boots = s.Elastic.boots_by_type;
    t_peak_pool = s.Elastic.peak_pool;
  }

(* ------------------------------------------------------------------ *)
(* Report. No wall-clock anywhere: the output is part of the [-j N]
   determinism contract (CI cmp's serial vs parallel). *)

let run ppf c =
  let reg = registry () in
  Fmt.pf ppf
    "@.=== Multi-tenant economics: %s load %.2f burst x%.1f, %d queries, %d \
     servers, theta $%.2f, seed %d ===@."
    (Workloads.kind_name c.kind) c.load c.burst_high c.n_queries c.servers
    c.theta c.seed;
  Fmt.pf ppf "tenants:";
  Array.iter
    (fun p ->
      Fmt.pf ppf " %s(cls %d, tier %.1fx, share %d, slo %.0f%%)"
        p.Tenancy.pname p.Tenancy.cls p.Tenancy.tier p.Tenancy.share
        (100.0 *. p.Tenancy.slo_late))
    (reg : Tenancy.registry).Tenancy.profiles;
  Fmt.pf ppf "@.";
  let cells = grid c in
  Fmt.pf ppf
    "@.%-8s %-8s %-9s %12s %12s %6s %6s %6s %8s@." "workload" "pool"
    "admission" "profit" "turned-away" "rej" "deg" "late%" "fairness";
  List.iter
    (fun x ->
      Fmt.pf ppf "%-8s %-8s %-9s %12.1f %12.1f %6d %6d %5.1f%% %8.3f@."
        x.workload x.pool
        (if x.admission then "on" else "off")
        x.profit x.turned_away x.rejected x.degraded (100.0 *. x.late)
        x.fairness)
    cells;
  (* The headline comparison: what the probe-priced gatekeeper is
     worth on each overloaded configuration. *)
  Fmt.pf ppf "@.admission value (profit on - off):@.";
  List.iter
    (fun (wname, _) ->
      List.iter
        (fun (pname, _) ->
          let pick adm =
            List.find
              (fun x ->
                x.workload = wname && x.pool = pname && x.admission = adm)
              cells
          in
          let off = pick false and on = pick true in
          Fmt.pf ppf "  %-8s %-8s off $%.1f  on $%.1f  -> %+.1f%s@." wname
            pname off.profit on.profit
            (on.profit -. off.profit)
            (if on.profit > off.profit then "  [admission wins]" else ""))
        (pools c))
    (workloads c reg);
  (* Per-tenant detail for the hardest cell: bursty, uniform pool,
     admission on — burn-rate windows included. *)
  (match
     List.find_opt
       (fun x -> x.workload = "bursty" && x.pool = "uniform" && x.admission)
       cells
   with
  | Some x ->
    Fmt.pf ppf "@.per-tenant (bursty/uniform, admission on):@.%a@."
      Tenancy.pp_report x.report
  | None -> ());
  let t = run_typed c in
  Fmt.pf ppf
    "@.elastic typed pool (bursty, admission on): profit $%.1f  rent $%.1f \
     (typed $%.1f)  peak pool %d  boots=[%s]@."
    t.t_profit t.t_cost t.t_typed_cost t.t_peak_pool
    (String.concat "; "
       (List.map (fun (n, k) -> Printf.sprintf "%s:%d" n k) t.t_boots))
