(* Trace-driven experiments: the paper's grids over a real cluster log
   instead of a stationary generator. See exp_trace.mli.

   Everything here streams. A run is [Sim.session] + one [Sim.inject]
   per synthesized query + [Sim.drain]; by the session contract that
   is exactly [Sim.run] on the materialized array, so cells are
   comparable with every array-based experiment in the repo while
   holding only the in-flight buffers in memory. *)

type cfg = {
  path : string;
  synth : Sla_synth.config;
  tiles : int;
  max_jobs : int option;
  servers : int;
  warmup_frac : float;
}

let cfg ?(synth = Sla_synth.config ()) ?(tiles = 1) ?max_jobs ?(servers = 8)
    ?(warmup_frac = 0.1) ~path () =
  if tiles < 1 then invalid_arg "Exp_trace.cfg: tiles must be >= 1";
  if servers < 1 then invalid_arg "Exp_trace.cfg: servers must be >= 1";
  if warmup_frac < 0.0 || warmup_frac >= 1.0 then
    invalid_arg "Exp_trace.cfg: warmup_frac must be in [0, 1)";
  { path; synth; tiles; max_jobs; servers; warmup_frac }

let stream ?stats c =
  Sla_synth.stream c.synth ~tiles:c.tiles ?max_jobs:c.max_jobs ?stats
    ~path:c.path ()

let inspect c =
  let stats = Sla_synth.stats_create () in
  Seq.iter ignore (stream ~stats c);
  stats

(* Real estimation error can make a monster query's estimate tiny; the
   reservoir keeps the response sample (and so the streaming memory)
   bounded whatever the trace length. *)
let response_cap = 65_536

let warmup_id c (stats : Sla_synth.stats) =
  Float.to_int (c.warmup_frac *. Float.of_int stats.Sla_synth.kept)

(* One streamed run. [extra_hook]/[timers]/[ticker]/[on_dispatch] are
   the fault-injection and elastic attachment points; the arrival path
   itself is identical for every cell. *)
let stream_run ?on_dispatch ?extra_hook ?timers ?ticker ~c ~warmup_id
    ~n_servers ~scheduler ~dispatcher () =
  let metrics = Metrics.create ~response_cap ~warmup_id () in
  let pick_next, hook = Schedulers.instantiate scheduler in
  let on_server_event ~sid ~now ev =
    (match extra_hook with Some h -> h ~sid ~now ev | None -> ());
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  let sess =
    Sim.session ?on_dispatch ?timers ?ticker ~on_server_event ~n_servers
      ~pick_next
      ~dispatch:(Dispatchers.instantiate dispatcher)
      ~metrics ()
  in
  Seq.iter (Sim.inject sess) (stream c);
  Sim.drain sess;
  metrics

(* ------------------------------------------------------------------ *)
(* The scheduling x dispatching grid *)

(* CBS's memoryless waiting-time rate: one over the trace's mean
   estimated execution time (the trace-side analogue of
   [Exp_common.cbs_rate]). *)
let cbs_rate (stats : Sla_synth.stats) =
  let mean_est =
    if stats.Sla_synth.kept = 0 then 1.0
    else stats.Sla_synth.est_work_ms /. Float.of_int stats.Sla_synth.kept
  in
  1.0 /. Float.max 1e-9 mean_est

let schedulers stats =
  let rate = cbs_rate stats in
  [
    ("FCFS", Schedulers.fcfs);
    ("FCFS+tree", Schedulers.fcfs_sla_tree_incr);
    ("CBS", Schedulers.cbs ~rate);
    ("CBS+tree", Schedulers.cbs_sla_tree ~rate);
  ]

let dispatchers () =
  [
    ("RR", Dispatchers.round_robin);
    ("LWL", Dispatchers.lwl);
    ("SLA-tree", Dispatchers.fcfs_sla_tree_incr ());
  ]

type cell = {
  sched : string;
  disp : string;
  avg_loss : float;
  avg_profit : float;
  late : float;
  rejected : int;
}

let grid c =
  let stats = inspect c in
  let warmup_id = warmup_id c stats in
  List.concat_map
    (fun (sname, sched) ->
      List.map (fun (dname, disp) -> (sname, sched, dname, disp)) (dispatchers ()))
    (schedulers stats)
  |> Parallel.map_list (fun (sname, scheduler, dname, dispatcher) ->
         let m =
           stream_run ~c ~warmup_id ~n_servers:c.servers ~scheduler ~dispatcher
             ()
         in
         {
           sched = sname;
           disp = dname;
           avg_loss = Metrics.avg_loss m;
           avg_profit = Metrics.avg_profit m;
           late = Metrics.late_fraction m;
           rejected = Metrics.rejected_count m;
         })

(* ------------------------------------------------------------------ *)
(* Elastic and resilience variants *)

type variant_row = {
  label : string;
  profit : float;
  v_avg_loss : float;
  v_late : float;
  lost : int;
  servers_note : string;
}

(* The autoscaler's price of a server: half the trace's potential
   profit rate per provisioned server — expensive enough that idle
   capacity hurts, cheap enough that scaling up for a burst pays.
   Derived from the pre-pass, so it adapts to whatever log is
   replayed. *)
let elastic_config c (stats : Sla_synth.stats) =
  let span = Float.max 1.0 stats.Sla_synth.span_ms in
  let interval = span /. 120.0 in
  let mean_top_gain =
    let classes = c.synth.Sla_synth.classes in
    let w = Array.fold_left (fun a cl -> a + cl.Sla_synth.weight) 0 classes in
    Array.fold_left
      (fun a cl ->
        a +. (Float.of_int cl.Sla_synth.weight *. cl.Sla_synth.gains.(0)))
      0.0 classes
    /. Float.of_int w
  in
  let profit_rate =
    mean_top_gain *. Float.of_int stats.Sla_synth.kept /. span
  in
  let cost_per_interval =
    0.5 *. profit_rate /. Float.of_int c.servers *. interval
  in
  Elastic.config ~interval ~cost_per_interval
    ~boot_delay:(interval /. 2.0)
    ~cooldown:(2.0 *. interval)
    ~min_servers:(max 1 (c.servers / 2))
    ~max_servers:(2 * c.servers) ()

(* Elastic variant: replicate [Elastic.run]'s wiring around the
   streaming session (it only accepts a materialized array). *)
let run_elastic c (stats : Sla_synth.stats) =
  let warmup_id = warmup_id c stats in
  let ecfg = elastic_config c stats in
  let ctl = Elastic.create ecfg Elastic.sla_tree_policy ~initial_servers:c.servers in
  let metrics = Metrics.create ~response_cap ~warmup_id () in
  let pick_next, hook = Schedulers.instantiate Schedulers.fcfs_sla_tree_incr in
  let last_event = ref 0.0 in
  let on_server_event ~sid ~now ev =
    if now > !last_event then last_event := now;
    Elastic.on_server_event ctl ~sid ~now ev;
    match hook with Some h -> h ~sid ~now ev | None -> ()
  in
  let sess =
    Sim.session
      ~on_dispatch:(fun ~now q d -> Elastic.on_dispatch ctl ~now q d)
      ~on_server_event
      ~ticker:(ecfg.Elastic.interval, Elastic.tick ctl)
      ~n_servers:c.servers ~pick_next
      ~dispatch:(Dispatchers.instantiate (Dispatchers.fcfs_sla_tree_incr ()))
      ~metrics ()
  in
  Seq.iter (Sim.inject sess) (stream c);
  Sim.drain sess;
  Elastic.finalize ctl ~now:!last_event;
  let s = Elastic.summary ctl in
  {
    label = "autoscale";
    profit = Metrics.total_profit metrics;
    v_avg_loss = Metrics.avg_loss metrics;
    v_late = Metrics.late_fraction metrics;
    lost = 0;
    servers_note =
      Printf.sprintf "pool %d..%d, %d up/%d down, net $%.0f"
        s.Elastic.min_pool s.Elastic.peak_pool s.Elastic.scale_ups
        s.Elastic.scale_downs
        (Metrics.total_profit metrics -. s.Elastic.cost);
  }

(* Resilience variants: the SLA-tree stack under a seeded storm, crash
   retries keeping their original SLA clock (the Exp_resilience
   protocol, streamed). *)
let run_storm c (stats : Sla_synth.stats) ~spec =
  let warmup_id = warmup_id c stats in
  let horizon = Float.max 1.0 stats.Sla_synth.span_ms in
  let plan = Fault.plan_of_spec spec ~horizon ~n_servers:c.servers in
  let injector = Fault.create ~plan () in
  let metrics =
    stream_run
      ~extra_hook:(Fault.on_server_event injector)
      ~timers:(Fault.timers injector)
      ~c ~warmup_id ~n_servers:c.servers
      ~scheduler:Schedulers.fcfs_sla_tree_incr
      ~dispatcher:(Dispatchers.fcfs_sla_tree_incr ())
      ()
  in
  Fault.finalize injector metrics;
  let fs = Fault.stats injector in
  {
    label = "storm " ^ spec;
    profit = Metrics.total_profit metrics;
    v_avg_loss = Metrics.avg_loss metrics;
    v_late = Metrics.late_fraction metrics;
    lost = Metrics.lost_count metrics;
    servers_note =
      Printf.sprintf "%d crashes, %d degrades, %d retries" fs.Fault.crashes
        fs.Fault.degrades fs.Fault.retries;
  }

let variants c =
  let stats = inspect c in
  Parallel.map_list
    (fun f -> f ())
    [
      (fun () -> run_elastic c stats);
      (fun () -> run_storm c stats ~spec:"moderate:11");
      (fun () -> run_storm c stats ~spec:"severe:11");
    ]

(* ------------------------------------------------------------------ *)
(* Report. No wall-clock anywhere: the output is part of the [-j N]
   determinism contract (CI cmp's serial vs parallel). *)

(* [run]'s [?variants] label shadows the function. *)
let variant_rows = variants

let run ?(variants = true) ppf c =
  let stats = inspect c in
  Fmt.pf ppf "@.=== Trace-driven grid: %s%s ===@." c.path
    (if c.tiles > 1 then Printf.sprintf " x %d tiles" c.tiles else "");
  Fmt.pf ppf "%a@." Sla_synth.pp_stats stats;
  Fmt.pf ppf
    "synthesis: time-scale %g, load-factor %g, seed %d; %d server(s) -> \
     implied load %.2f; warm-up %d; CBS rate %.3g@."
    c.synth.Sla_synth.time_scale c.synth.Sla_synth.load_factor
    c.synth.Sla_synth.seed c.servers
    (Sla_synth.implied_load stats ~servers:c.servers)
    (warmup_id c stats) (cbs_rate stats);
  let cells = grid c in
  Fmt.pf ppf "@.avg profit loss per query (late%% in parens):@.";
  Fmt.pf ppf "%-11s" "";
  List.iter (fun (d, _) -> Fmt.pf ppf " %16s" d) (dispatchers ());
  Fmt.pf ppf "@.";
  List.iter
    (fun (sname, _) ->
      Fmt.pf ppf "%-11s" sname;
      List.iter
        (fun (dname, _) ->
          match
            List.find_opt (fun x -> x.sched = sname && x.disp = dname) cells
          with
          | Some x -> Fmt.pf ppf " %8.4f (%4.1f%%)" x.avg_loss (100.0 *. x.late)
          | None -> Fmt.pf ppf " %16s" "-")
        (dispatchers ());
      Fmt.pf ppf "@.")
    (schedulers stats);
  if variants then begin
    let rows = variant_rows c in
    Fmt.pf ppf "@.variants (FCFS+tree / SLA-tree dispatch):@.";
    List.iter
      (fun r ->
        Fmt.pf ppf
          "%-18s profit $%10.0f  avg-loss %8.4f  late %5.1f%%  lost %4d  %s@."
          r.label r.profit r.v_avg_loss (100.0 *. r.v_late) r.lost
          r.servers_note)
      rows
  end
