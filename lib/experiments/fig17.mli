(** Figure 17 (Sec 7.6): running time of one SLA-tree scheduling
    decision (full build plus one postpone question per buffered
    query) as the buffer grows. *)

val default_buffer_sizes : int list

type point = {
  buffer_len : int;
  ms_per_decision : float;
  slack_units : int;
}

(** A saturated-server buffer with far-future deadlines (large slack
    trees — the paper's stress setup). *)
val make_buffer : seed:int -> int -> Query.t array

val compute : ?buffer_sizes:int list -> seed:int -> unit -> point list

(** Write a gnuplot-ready [fig17.dat] into [dir]; returns the path. *)
val export : ?buffer_sizes:int list -> dir:string -> seed:int -> unit -> string

val run : Format.formatter -> seed:int -> unit -> unit
