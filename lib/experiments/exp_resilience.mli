(** Chaos-driven resilience experiment (beyond the paper): the same
    steady workload under scripted crashes and brownouts, across
    dispatchers (RR / LWL / SLA-tree) and pool managers (static /
    SLA-tree autoscaler). Each configuration is scored against its own
    fault-free baseline; see docs/RESILIENCE.md. *)

type row = {
  pool : string;
  dispatcher : string;
  plan : string;
  profit : float;
  drop : float;  (** profit lost vs the fault-free baseline, fraction *)
  avg_loss : float;
  late : float;
  lost : int;
  retries : int;
  crashes : int;
  degrades : int;
  skipped : int;
  mttr : float;
}

(** The full grid: static × {RR, LWL, SLA-tree} × {none, moderate,
    severe}, then autoscale × the three plans. Every cell replays the
    identical workload; fault-free cells have [drop = 0]. *)
val rows : ?obs:Obs.t -> scale:Exp_scale.t -> unit -> row list

(** Whether the SLA-tree dispatcher's moderate-plan profit drop is no
    worse than RR's and LWL's (up to a quarter-percentage-point
    plan-seed noise tolerance), with the three drops. *)
val verdict : row list -> (bool * float * float * float) option

val run : Format.formatter -> Exp_scale.t -> unit
