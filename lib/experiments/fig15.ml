(* Figure 15 (Sec 7.1): histograms of query execution times for the
   Exp and Pareto workloads (the Pareto panel is log-scaled), plus the
   SSBM input table (Table 1). *)

let default_samples = 100_000

type result = {
  exp_hist : Histogram.t;
  pareto_hist : Histogram.t;
  exp_mean : float;
  pareto_mean : float;
}

let compute ?(samples = default_samples) ~seed () =
  let rng = Prng.create seed in
  let rng_exp = Prng.split rng and rng_par = Prng.split rng in
  (* The two panels draw from independent split streams and fill their
     own histogram/stats, so they run as two parallel jobs; each
     stream's draw and accumulation order is unchanged, keeping both
     panels bit-identical to the serial run. *)
  let panels =
    Parallel.map_ordered
      (fun (dist, rng, hist) ->
        let stats = Stats.create () in
        for _ = 1 to samples do
          let x = Service_dist.sample dist rng in
          Histogram.add hist x;
          Stats.add stats x
        done;
        (hist, Stats.mean stats))
      [|
        ( Workloads.dist Workloads.Exp,
          rng_exp,
          Histogram.create ~scale:Histogram.Linear ~lo:0.0 ~hi:200.0 ~bins:25 );
        ( Workloads.dist Workloads.Pareto,
          rng_par,
          Histogram.create ~scale:Histogram.Log10 ~lo:1.0 ~hi:1e6 ~bins:24 );
      |]
  in
  let exp_hist, exp_mean = panels.(0) in
  let pareto_hist, pareto_mean = panels.(1) in
  { exp_hist; pareto_hist; exp_mean; pareto_mean }

(* Write gnuplot-ready data files: one row per bin with its bounds and
   count. *)
let write_dat ~dir name hist =
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "# bin_lo bin_hi count\n";
      Array.iteri
        (fun i c ->
          let lo, hi = Histogram.bin_bounds hist i in
          Printf.fprintf oc "%.17g %.17g %d\n" lo hi c)
        (Histogram.counts hist));
  path

let export ?(samples = default_samples) ~dir ~seed () =
  let r = compute ~samples ~seed () in
  [ write_dat ~dir "fig15_exp.dat" r.exp_hist;
    write_dat ~dir "fig15_pareto.dat" r.pareto_hist ]

let run ?(samples = default_samples) ppf ~seed () =
  let r = compute ~samples ~seed () in
  Fmt.pf ppf "@.=== Figure 15: query execution time histograms (%d samples) ===@."
    samples;
  Fmt.pf ppf "@.Exp workload (mean %.2f ms; linear bins, ms):@." r.exp_mean;
  Histogram.render ppf r.exp_hist;
  Fmt.pf ppf "@.Pareto workload (sample mean %.2f ms; log10 bins, ms):@."
    r.pareto_mean;
  Histogram.render ppf r.pareto_hist;
  Fmt.pf ppf "@.";
  Ssbm.pp_table ppf ()
