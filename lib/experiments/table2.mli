(** Table 2 (Sec 7.2): scheduling comparison — average profit loss per
    query for FCFS, FCFS+SLA-tree, CBS and CBS+SLA-tree. *)

val default_loads : float list
val schedulers : Exp_common.sched_kind list

type cell = {
  profile : Workloads.sla_profile;
  kind : Workloads.kind;
  load : float;
  sched : Exp_common.sched_kind;
  avg_loss : float;
}

(** Full (or restricted) sweep; one cell per combination. *)
val compute :
  ?profiles:Workloads.sla_profile list ->
  ?kinds:Workloads.kind list ->
  ?loads:float list ->
  Exp_scale.t ->
  cell list

val to_report : ?loads:float list -> cell list -> Report.t
val run : Format.formatter -> Exp_scale.t -> unit
