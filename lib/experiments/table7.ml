(* Table 7 (Sec 8.2): the three-query instance on which greedy
   SLA-tree scheduling is not globally optimal. Reproduced as an
   executable demonstration. *)

type result = {
  original_profit : float;
  greedy_profit : float;
  optimal_profit : float;
  greedy_keeps_head : bool;
}

let queries () =
  let mk id size bound gain =
    Query.make ~id ~arrival:0.0 ~size ~sla:(Sla.single_step ~bound ~gain) ()
  in
  [| mk 0 1.0 1.0 1.0; mk 1 0.5 1.0 0.6; mk 2 0.5 1.0 0.6 |]

(* Execute the SLA-tree greedy policy offline: repeatedly rush the
   best query, realize its profit, repeat on the remainder. *)
let greedy_execute qs =
  let remaining = ref (Array.to_list qs) in
  let t = ref 0.0 in
  let profit = ref 0.0 in
  let kept_head = ref true in
  while !remaining <> [] do
    let buf = Array.of_list !remaining in
    let tree = Sla_tree.build ~now:!t buf in
    let i = match What_if.best_rush tree with Some (i, _) -> i | None -> 0 in
    if i <> 0 then kept_head := false;
    let q = buf.(i) in
    t := !t +. q.Query.size;
    profit := !profit +. Query.profit_at q ~completion:!t;
    remaining := List.filteri (fun k _ -> k <> i) !remaining
  done;
  (!profit, !kept_head)

let compute () =
  let qs = queries () in
  let original =
    Naive_whatif.scheduled_profit (Schedule.of_queries ~now:0.0 qs)
  in
  let greedy_profit, greedy_keeps_head = greedy_execute qs in
  let optimal =
    Naive_whatif.scheduled_profit
      (Schedule.of_queries ~now:0.0 [| qs.(1); qs.(2); qs.(0) |])
  in
  {
    original_profit = original;
    greedy_profit;
    optimal_profit = optimal;
    greedy_keeps_head;
  }

let run ppf () =
  let r = compute () in
  Fmt.pf ppf "@.=== Table 7: greedy non-optimality example ===@.";
  Fmt.pf ppf
    "3 queries, all due at t=1: q1 (exec 1.0, $1), q2 and q3 (exec 0.5, $0.6 \
     each)@.";
  Fmt.pf ppf "original schedule profit: $%.2f@." r.original_profit;
  Fmt.pf ppf "SLA-tree greedy profit:   $%.2f (keeps q1 first: %b)@."
    r.greedy_profit r.greedy_keeps_head;
  Fmt.pf ppf "optimal schedule profit:  $%.2f (q2, q3 first)@." r.optimal_profit;
  Fmt.pf ppf
    "greedy never falls below the original schedule, but misses the optimum \
     (Sec 8.2).@."
