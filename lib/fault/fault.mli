(** Fault injection and resilience: crashes, brownouts and repairs
    driven into a live {!Sim.run} through its [timers] hook.

    A {e plan} is a time-sorted script of fault events, either written
    by hand ({!scripted}, or parsed from a CLI spec with
    {!plan_of_spec}) or drawn from a per-server MTTF/MTTR exponential
    failure model ({!random_plan}). An {e injector} ({!create}) turns
    a plan into [Sim.run ~timers] callbacks that fire
    {!Sim.crash_server} / {!Sim.degrade_server} /
    {!Sim.restore_server} at the scripted instants, applies the retry
    policy to crash orphans, and measures time-to-recover.

    Determinism: the random model draws from {!Prng.split_key}
    sub-streams (one per server, keyed by server id) of a generator
    owned by the plan alone, so enabling faults never perturbs the
    workload's random stream — and two runs of the same plan over the
    same workload produce byte-identical metrics.

    Retry semantics (paper Sec 6 profit model): a crash orphan that is
    re-injected keeps its {e original} arrival time
    ({!Query.retried}), so its deadlines keep passing and its profit
    keeps bleeding while it waits again — a crash never resets the SLA
    clock. Orphans over the retry cap (or all orphans under
    [requeue = false]) are {e lost}: the provider pays the SLA penalty
    ({!Metrics.record_lost}). *)

type event =
  | Crash of { at : float; sid : int }
  | Degrade of { at : float; sid : int; factor : float }
      (** brownout: service rate becomes [factor *. nominal] *)
  | Restore of { at : float; sid : int }
      (** repair: [Down] rejoins the pool; a degraded server returns
          to nominal speed *)

(** An event's [sid] names a pool {e slot}: at fire time the injector
    resolves it to the [sid]-th non-retired server. On a static pool
    that is exactly server [sid]; under an autoscaler the machine
    occupying the slot fails, whichever server the controller
    currently runs on it (a slot beyond the live pool is counted as
    skipped). *)

val event_time : event -> float
val pp_event : Format.formatter -> event -> unit

(** A fault plan: events sorted by time (ties in script order). *)
type plan = event list

(** Validate and time-sort a hand-written script. Raises
    [Invalid_argument] on negative times, negative server ids or
    non-positive degrade factors. *)
val scripted : event list -> plan

(** Draw a plan from an exponential failure model: each of the
    [n_servers] initial servers alternates up-time
    ([Prng.exponential ~mean:mttf]) and repair-time
    ([~mean:mttr]) on its own {!Prng.split_key} sub-stream (keyed by
    server id), until [horizon]. Each failure is a full crash with
    probability [1 - degrade_prob] (default [degrade_prob = 0.]) and
    otherwise a brownout to [degrade_factor] (default [0.5]); either
    way a [Restore] follows one repair-time later (repairs beyond the
    horizon are kept — a fault must never be permanent by accident).
    Servers added mid-run by an autoscaler are not in the plan.
    Raises [Invalid_argument] on non-positive [mttf]/[mttr] or
    parameters outside their ranges. *)
val random_plan :
  ?degrade_prob:float ->
  ?degrade_factor:float ->
  seed:int ->
  horizon:float ->
  n_servers:int ->
  mttf:float ->
  mttr:float ->
  unit ->
  plan

(** What happens to a crash orphan: with [requeue] (default) it
    re-enters the dispatcher as a {!Query.retried} copy while its
    retry count is below [max_retries]; otherwise (and beyond the cap)
    it is lost. *)
type retry_policy = { max_retries : int; requeue : bool }

(** [{ max_retries = 3; requeue = true }] *)
val default_retry : retry_policy

type stats = {
  crashes : int;  (** crash events that actually killed a server *)
  degrades : int;
  restores : int;
  skipped : int;
      (** events skipped: the target was already down/retired, or the
          crash would have left no dispatchable server (dispatchers
          raise when nothing accepts work, so the injector never
          strands the workload) *)
  retries : int;  (** orphans re-injected through the dispatcher *)
  lost : int;  (** orphans dropped on the floor (see {!finalize}) *)
  recoveries : (float * float) list;
      (** per resolved crash: (crash time, time-to-recover). A crash
          resolves at the first completion after it at which the
          pool's total estimated backlog is back at or below its
          pre-crash level. Crashes the run ends before resolving are
          absent. *)
}

(** Mean time-to-recover over resolved crashes; NaN when none. *)
val mean_time_to_recover : stats -> float

val pp_stats : Format.formatter -> stats -> unit

(** A plan instantiated against one run. Single-use: create one
    injector per [Sim.run]. *)
type t

(** [obs] (default {!Obs.noop}) receives counters [fault.crashes] /
    [fault.degrades] / [fault.restores] / [fault.retries] /
    [fault.lost] / [fault.skipped] and trace instants [fault.crash]
    (args: sid, orphaned/retried/lost counts), [fault.degrade] (args:
    sid, factor) and [fault.restore] (category ["fault"], simulated
    time in the args) — handles resolved once here, the usual
    zero-cost discipline. *)
val create : ?obs:Obs.t -> ?retry:retry_policy -> plan:plan -> unit -> t

(** The [Sim.run ~timers] array realising the plan. *)
val timers : t -> (float * (Sim.t -> unit)) array

(** Wire into [Sim.run ~on_server_event] (alongside any scheduler
    hook): watches completions to resolve time-to-recover. *)
val on_server_event : t -> sid:int -> now:float -> Sim.server_event -> unit

(** Account the orphans the retry policy declared lost into the run's
    metrics ({!Metrics.record_lost}) — call once after [Sim.run]
    returns, before reading the metrics. Kept out of the hot path so
    the injector works with harnesses that create their metrics
    internally (e.g. {!Elastic.run}). Raises [Invalid_argument] when
    called twice. *)
val finalize : t -> Metrics.t -> unit

val stats : t -> stats

(** Parse a [--faults] CLI spec into a plan. Grammar:
    - ["none"] — the empty plan;
    - ["moderate"] / ["severe"] (optionally [":<seed>"]) — presets of
      the random model scaled to [horizon] (moderate: brownouts only,
      about one per server, quick repairs; severe: full crashes with
      MTTF a third of the horizon and much slower repairs, 30%
      brownouts mixed in);
    - ["mttf=<t>,mttr=<t>[,degrade=<p>][,factor=<f>][,seed=<n>]"] —
      the random model with explicit parameters (times in simulated
      seconds; default seed 97);
    - ["crash@<t>:<sid>"] / ["degrade@<t>:<sid>:<factor>"] /
      ["restore@<t>:<sid>"] joined by [";"] — an explicit script.

    Raises [Invalid_argument] (with a message naming the offending
    part) on anything else. *)
val plan_of_spec : string -> horizon:float -> n_servers:int -> plan

(** One-line summary of the spec grammar (CLI help text). *)
val spec_doc : string
