(* Fault injection: plans (scripted or drawn from an MTTF/MTTR
   exponential model), and the injector that realises a plan against a
   live [Sim.run] through its [timers] hook.

   Determinism is the load-bearing property here. The random model
   owns its generator (derived from the plan seed alone) and draws
   per-server sub-streams via [Prng.split_key], which does not advance
   the parent — so the same seed always yields the same plan, and
   enabling faults cannot perturb any other random stream in the run.
   The injector itself is branch-free of wall-clock or ambient state:
   same plan + same workload => byte-identical metrics. *)

type event =
  | Crash of { at : float; sid : int }
  | Degrade of { at : float; sid : int; factor : float }
  | Restore of { at : float; sid : int }

let event_time = function
  | Crash { at; _ } | Degrade { at; _ } | Restore { at; _ } -> at

let pp_event ppf = function
  | Crash { at; sid } -> Fmt.pf ppf "crash@%g:%d" at sid
  | Degrade { at; sid; factor } -> Fmt.pf ppf "degrade@%g:%d:%g" at sid factor
  | Restore { at; sid } -> Fmt.pf ppf "restore@%g:%d" at sid

type plan = event list

let validate_event ev =
  let bad fmt = Fmt.kstr invalid_arg ("Fault.scripted: " ^^ fmt) in
  (match ev with
  | Crash { at; sid } | Restore { at; sid } ->
    if at < 0. || Float.is_nan at then bad "negative time %a" pp_event ev;
    if sid < 0 then bad "negative sid %a" pp_event ev
  | Degrade { at; sid; factor } ->
    if at < 0. || Float.is_nan at then bad "negative time %a" pp_event ev;
    if sid < 0 then bad "negative sid %a" pp_event ev;
    if not (factor > 0.) then bad "non-positive factor %a" pp_event ev);
  ev

let sort_plan evs =
  List.stable_sort (fun a b -> Float.compare (event_time a) (event_time b)) evs

let scripted evs = sort_plan (List.map validate_event evs)

let random_plan ?(degrade_prob = 0.) ?(degrade_factor = 0.5) ~seed ~horizon
    ~n_servers ~mttf ~mttr () =
  if not (mttf > 0.) then invalid_arg "Fault.random_plan: mttf <= 0";
  if not (mttr > 0.) then invalid_arg "Fault.random_plan: mttr <= 0";
  if not (degrade_prob >= 0. && degrade_prob <= 1.) then
    invalid_arg "Fault.random_plan: degrade_prob outside [0, 1]";
  if not (degrade_factor > 0. && degrade_factor <= 1.) then
    invalid_arg "Fault.random_plan: degrade_factor outside (0, 1]";
  if n_servers < 0 then invalid_arg "Fault.random_plan: n_servers < 0";
  if not (horizon >= 0.) then invalid_arg "Fault.random_plan: horizon < 0";
  let base = Prng.create seed in
  let evs = ref [] in
  for sid = 0 to n_servers - 1 do
    (* One failure process per server on its own sub-stream: the plan
       for server k does not depend on how many other servers exist. *)
    let rng = Prng.split_key base ~key:sid in
    let t = ref 0. in
    let alive = ref true in
    while !alive do
      let at = !t +. Prng.exponential rng ~mean:mttf in
      if at >= horizon then alive := false
      else begin
        let repair = Prng.exponential rng ~mean:mttr in
        let fault =
          if Prng.float rng < degrade_prob then
            Degrade { at; sid; factor = degrade_factor }
          else Crash { at; sid }
        in
        (* The repair is kept even past the horizon: a fault must
           never be accidentally permanent. *)
        evs := Restore { at = at +. repair; sid } :: fault :: !evs;
        t := at +. repair
      end
    done
  done;
  sort_plan (List.rev !evs)

type retry_policy = { max_retries : int; requeue : bool }

let default_retry = { max_retries = 3; requeue = true }

type stats = {
  crashes : int;
  degrades : int;
  restores : int;
  skipped : int;
  retries : int;
  lost : int;
  recoveries : (float * float) list;
}

let mean_time_to_recover s =
  match s.recoveries with
  | [] -> Float.nan
  | l ->
    List.fold_left (fun acc (_, d) -> acc +. d) 0. l
    /. Float.of_int (List.length l)

let pp_stats ppf s =
  Fmt.pf ppf
    "crashes=%d degrades=%d restores=%d skipped=%d retries=%d lost=%d \
     recovered=%d mttr=%.3f"
    s.crashes s.degrades s.restores s.skipped s.retries s.lost
    (List.length s.recoveries) (mean_time_to_recover s)

(* Counter handles, resolved once at [create] (the Obs zero-cost
   discipline: [None] on the noop sink, one record otherwise). *)
type handles = {
  h_crashes : Obs.Registry.counter;
  h_degrades : Obs.Registry.counter;
  h_restores : Obs.Registry.counter;
  h_retries : Obs.Registry.counter;
  h_lost : Obs.Registry.counter;
  h_skipped : Obs.Registry.counter;
}

type t = {
  obs : Obs.t;
  handles : handles option;
  retry : retry_policy;
  plan : plan;
  mutable sim : Sim.t option;  (* stashed at the first timer firing *)
  mutable crashes : int;
  mutable degrades : int;
  mutable restores : int;
  mutable skipped : int;
  mutable retries : int;
  mutable lost_n : int;
  mutable lost_rev : Query.t list;  (* accounted by [finalize] *)
  mutable pending : (float * float) list;  (* crash time, baseline backlog *)
  mutable recoveries_rev : (float * float) list;
  mutable finalized : bool;
}

let create ?(obs = Obs.noop) ?(retry = default_retry) ~plan () =
  if retry.max_retries < 0 then invalid_arg "Fault.create: max_retries < 0";
  let handles =
    if Obs.enabled obs then
      let r = Obs.registry obs in
      Some
        {
          h_crashes = Obs.Registry.counter r "fault.crashes";
          h_degrades = Obs.Registry.counter r "fault.degrades";
          h_restores = Obs.Registry.counter r "fault.restores";
          h_retries = Obs.Registry.counter r "fault.retries";
          h_lost = Obs.Registry.counter r "fault.lost";
          h_skipped = Obs.Registry.counter r "fault.skipped";
        }
    else None
  in
  {
    obs;
    handles;
    retry;
    plan;
    sim = None;
    crashes = 0;
    degrades = 0;
    restores = 0;
    skipped = 0;
    retries = 0;
    lost_n = 0;
    lost_rev = [];
    pending = [];
    recoveries_rev = [];
    finalized = false;
  }

let count t f = match t.handles with Some h -> f h | None -> ()

let skip t =
  t.skipped <- t.skipped + 1;
  count t (fun h -> Obs.Registry.incr h.h_skipped)

(* Estimated work still in the pool — the recovery baseline metric.
   [Down] and [Retired] servers hold nothing; [est_work_left] is O(1)
   per server. *)
let total_backlog sim =
  let b = ref 0. in
  for sid = 0 to Sim.n_servers sim - 1 do
    if Sim.server_state sim sid <> Sim.Retired then
      b := !b +. Sim.est_work_left sim (Sim.server sim sid)
  done;
  !b

let fire_crash t sim sid =
  match Sim.server_state sim sid with
  | Sim.Down | Sim.Retired -> skip t
  | _ when Sim.dispatchable sim sid && Sim.dispatchable_count sim <= 1 ->
    (* Never strand the workload: dispatchers raise when no server
       accepts work, so the last dispatchable server is immune. *)
    skip t
  | _ ->
    let now = Sim.now sim in
    let baseline = total_backlog sim in
    let orphans = Sim.crash_server sim sid in
    t.crashes <- t.crashes + 1;
    count t (fun h -> Obs.Registry.incr h.h_crashes);
    let retried = ref 0 and lost = ref 0 in
    List.iter
      (fun q ->
        if t.retry.requeue && q.Query.retries < t.retry.max_retries then begin
          incr retried;
          Sim.reinject sim (Query.retried q)
        end
        else begin
          incr lost;
          t.lost_rev <- q :: t.lost_rev
        end)
      orphans;
    t.retries <- t.retries + !retried;
    t.lost_n <- t.lost_n + !lost;
    count t (fun h ->
        Obs.Registry.add h.h_retries !retried;
        Obs.Registry.add h.h_lost !lost);
    t.pending <- (now, baseline) :: t.pending;
    Obs.instant t.obs ~cat:"fault"
      ~args:
        [
          ("t", Obs.Trace.F now);
          ("sid", Obs.Trace.I sid);
          ("orphaned", Obs.Trace.I (List.length orphans));
          ("retried", Obs.Trace.I !retried);
          ("lost", Obs.Trace.I !lost);
        ]
      "fault.crash"

let fire_degrade t sim sid factor =
  match Sim.server_state sim sid with
  | Sim.Down | Sim.Retired -> skip t
  | _ ->
    Sim.degrade_server sim sid ~factor;
    t.degrades <- t.degrades + 1;
    count t (fun h -> Obs.Registry.incr h.h_degrades);
    Obs.instant t.obs ~cat:"fault"
      ~args:
        [
          ("t", Obs.Trace.F (Sim.now sim));
          ("sid", Obs.Trace.I sid);
          ("factor", Obs.Trace.F factor);
        ]
      "fault.degrade"

let fire_restore t sim sid =
  let restorable =
    match Sim.server_state sim sid with
    | Sim.Down -> true
    | Sim.Active | Sim.Draining ->
      let s = Sim.server sim sid in
      s.Sim.speed <> s.Sim.nominal
    | Sim.Booting _ | Sim.Retired -> false
  in
  if not restorable then skip t
  else begin
    Sim.restore_server sim sid;
    t.restores <- t.restores + 1;
    count t (fun h -> Obs.Registry.incr h.h_restores);
    Obs.instant t.obs ~cat:"fault"
      ~args:[ ("t", Obs.Trace.F (Sim.now sim)); ("sid", Obs.Trace.I sid) ]
      "fault.restore"
  end

(* Plan sids are pool *slots*: slot [k] is the k-th non-retired server
   at fire time. On a static pool that is just server [k]; under an
   autoscaler, the machine occupying the slot fails — whatever server
   currently runs on it — so fault plans stay meaningful when the
   controller has replaced the initial servers. *)
let resolve_slot sim slot =
  let n = Sim.n_servers sim in
  let rec go sid live =
    if sid >= n then None
    else if Sim.server_state sim sid <> Sim.Retired then
      if live = slot then Some sid else go (sid + 1) (live + 1)
    else go (sid + 1) live
  in
  go 0 0

let fire t sim ev =
  t.sim <- Some sim;
  let slot =
    match ev with
    | Crash { sid; _ } | Degrade { sid; _ } | Restore { sid; _ } -> sid
  in
  match resolve_slot sim slot with
  | None -> skip t
  | Some sid -> (
    match ev with
    | Crash _ -> fire_crash t sim sid
    | Degrade { factor; _ } -> fire_degrade t sim sid factor
    | Restore _ -> fire_restore t sim sid)

let timers t =
  Array.of_list
    (List.map (fun ev -> (event_time ev, fun sim -> fire t sim ev)) t.plan)

let on_server_event t ~sid:_ ~now ev =
  match ev with
  | Sim.Finished _ -> (
    match (t.pending, t.sim) with
    | [], _ | _, None -> ()
    | pending, Some sim ->
      let b = total_backlog sim in
      let resolved, still =
        List.partition (fun (_, baseline) -> b <= baseline) pending
      in
      if resolved <> [] then begin
        t.pending <- still;
        List.iter
          (fun (ct, _) -> t.recoveries_rev <- (ct, now -. ct) :: t.recoveries_rev)
          resolved
      end)
  | _ -> ()

let finalize t metrics =
  if t.finalized then invalid_arg "Fault.finalize: already finalized";
  t.finalized <- true;
  List.iter (Metrics.record_lost metrics) (List.rev t.lost_rev)

let stats t =
  {
    crashes = t.crashes;
    degrades = t.degrades;
    restores = t.restores;
    skipped = t.skipped;
    retries = t.retries;
    lost = t.lost_n;
    recoveries =
      List.sort
        (fun (a, _) (b, _) -> Float.compare a b)
        (List.rev t.recoveries_rev);
  }

(* --- CLI spec parsing ------------------------------------------------- *)

let spec_doc =
  "none | moderate[:SEED] | severe[:SEED] | \
   mttf=T,mttr=T[,degrade=P][,factor=F][,seed=N] | \
   crash@T:SID;degrade@T:SID:F;restore@T:SID"

let default_seed = 97

let bad fmt = Fmt.kstr invalid_arg ("Fault.plan_of_spec: " ^^ fmt)

let parse_float what s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> bad "bad %s %S" what s

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad "bad %s %S" what s

(* "moderate" / "severe", optionally ":<seed>". Moderate is the
   partial-degradation regime — brownouts only, about one per server,
   quick repairs — where dispatch quality still matters; severe is
   capacity starvation (frequent full crashes, repairs an order of
   magnitude slower), where every dispatcher drowns and the retry /
   loss machinery is exercised. *)
let parse_preset name rest ~horizon ~n_servers =
  if not (horizon > 0.) then bad "%s needs a positive horizon" name;
  let seed =
    match rest with None -> default_seed | Some s -> parse_int "seed" s
  in
  let mttf, mttr, degrade_prob =
    match name with
    | "moderate" -> (horizon, 0.05 *. horizon, 1.0)
    | _ -> (horizon /. 3., 0.1 *. horizon, 0.3)
  in
  random_plan ~degrade_prob ~degrade_factor:0.5 ~seed ~horizon ~n_servers
    ~mttf ~mttr ()

let parse_model spec ~horizon ~n_servers =
  let mttf = ref None
  and mttr = ref None
  and degrade = ref 0.
  and factor = ref 0.5
  and seed = ref default_seed in
  List.iter
    (fun part ->
      match String.index_opt part '=' with
      | None -> bad "expected key=value, got %S" part
      | Some i ->
        let k = String.sub part 0 i
        and v = String.sub part (i + 1) (String.length part - i - 1) in
        (match k with
        | "mttf" -> mttf := Some (parse_float "mttf" v)
        | "mttr" -> mttr := Some (parse_float "mttr" v)
        | "degrade" -> degrade := parse_float "degrade" v
        | "factor" -> factor := parse_float "factor" v
        | "seed" -> seed := parse_int "seed" v
        | _ -> bad "unknown key %S" k))
    (String.split_on_char ',' spec);
  match (!mttf, !mttr) with
  | Some mttf, Some mttr ->
    random_plan ~degrade_prob:!degrade ~degrade_factor:!factor ~seed:!seed
      ~horizon ~n_servers ~mttf ~mttr ()
  | _ -> bad "the model form needs both mttf= and mttr="

let parse_script spec =
  let parse_seg seg =
    match String.index_opt seg '@' with
    | None -> bad "expected kind@args, got %S" seg
    | Some i ->
      let kind = String.sub seg 0 i
      and rest = String.sub seg (i + 1) (String.length seg - i - 1) in
      let fields = String.split_on_char ':' rest in
      (match (kind, fields) with
      | "crash", [ at; sid ] ->
        Crash { at = parse_float "time" at; sid = parse_int "sid" sid }
      | "degrade", [ at; sid; f ] ->
        Degrade
          {
            at = parse_float "time" at;
            sid = parse_int "sid" sid;
            factor = parse_float "factor" f;
          }
      | "restore", [ at; sid ] ->
        Restore { at = parse_float "time" at; sid = parse_int "sid" sid }
      | _ -> bad "bad event %S" seg)
  in
  scripted
    (List.filter_map
       (fun seg ->
         let seg = String.trim seg in
         if seg = "" then None else Some (parse_seg seg))
       (String.split_on_char ';' spec))

let plan_of_spec spec ~horizon ~n_servers =
  let spec = String.trim spec in
  let preset name =
    let n = String.length name in
    if spec = name then Some (parse_preset name None ~horizon ~n_servers)
    else if String.length spec > n + 1 && String.sub spec 0 (n + 1) = name ^ ":"
    then
      let rest = String.sub spec (n + 1) (String.length spec - n - 1) in
      Some (parse_preset name (Some rest) ~horizon ~n_servers)
    else None
  in
  if spec = "none" || spec = "" then []
  else
    match preset "moderate" with
    | Some p -> p
    | None -> (
      match preset "severe" with
      | Some p -> p
      | None ->
        if String.contains spec '@' then parse_script spec
        else if String.contains spec '=' then
          parse_model spec ~horizon ~n_servers
        else bad "unrecognised spec %S (grammar: %s)" spec spec_doc)
