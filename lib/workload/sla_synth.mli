(** SLA synthesis over real traces: map SWF jobs to {!Query.t}.

    The paper's evaluation draws sizes and SLAs from synthetic
    generators; a real cluster log supplies arrival burstiness, a
    heavy-tailed run-time distribution and — through the user's
    requested time — {e real} estimation error, replacing
    [Estimate_error.gaussian]. The mapping, per kept job:

    - [arrival  = (submit - t0) * time_scale / load_factor]
    - [size     = run_time * time_scale] (the actual execution time)
    - [est_size = req_time * time_scale] when the user supplied a
      request, else [size] (no estimate → assume perfect)
    - SLA: the query's class (a seeded weighted draw, keyed on the
      query index so it is independent of chunking) supplies a tiered
      step function whose response bounds are
      [stretch_k * est_size] — i.e. deadline_k = arrival +
      stretch_k × requested-time — with the class's gains and
      penalty.

    [time_scale] only changes the unit (both inter-arrivals and sizes
    scale together, so utilization is invariant); [load_factor]
    compresses arrivals alone, so one trace yields a whole load
    sweep. Both re-timescalings are deterministic: the same file,
    flags and seed produce bit-identical queries. *)

(** One SLA class: [gains] holds one (strictly decreasing, positive)
    gain per stretch tier; a query missing every tier pays
    [penalty]. *)
type sla_class = {
  cls_name : string;
  weight : int;  (** relative draw frequency *)
  gains : float array;
  penalty : float;
}

type config = {
  classes : sla_class array;
  stretches : float array;
      (** deadline multipliers on the estimate, strictly increasing,
          same length as every class's [gains] *)
  time_scale : float;  (** virtual ms per SWF second *)
  load_factor : float;  (** arrival compression (>1 = heavier load) *)
  seed : int;
}

(** Default tiers: gold (1x) / silver (3x) / bronze (6x) classes over
    stretches [1; 3] — see DESIGN.md "SLA synthesis". *)
val default_classes : sla_class array

val default_stretches : float array

val config :
  ?classes:sla_class array ->
  ?stretches:float array ->
  ?time_scale:float ->
  ?load_factor:float ->
  ?seed:int ->
  unit ->
  config

(** Parse a class-set spec: semicolon-separated
    [name:weight:g1,g2,...:penalty] entries, e.g.
    ["gold:1:5,2:5;silver:3:2,1:1;bronze:6:1,0.5:0"]. *)
val classes_of_string : string -> (sla_class array, string) result

val classes_doc : string

(** The weighted class draw for the query at stream position [index],
    keyed off the master PRNG with {!Prng.split_key} — a pure function
    of [(config.seed, index)], so the draw is identical however the
    stream is chunked, tiled or parallelised. Exposed for the tenancy
    layer (tenant assignment reuses the same keyed-draw discipline)
    and for property tests of the class mix. *)
val pick_class : config -> Prng.t -> index:int -> sla_class

(** The stepwise SLA a class gives a query with estimate [est]:
    level [k] at [stretches.(k) * est] paying [gains.(k)], plus the
    class penalty. *)
val sla_of : config -> sla_class -> est:float -> Sla.t

(** Per-pass accounting: how many jobs the synthesis kept, dropped
    (no positive run time / negative submit) and clamped (submit time
    earlier than its predecessor — arrival forced monotone). *)
type stats = {
  mutable read : int;
  mutable kept : int;
  mutable dropped : int;
  mutable clamped : int;
  mutable no_estimate : int;  (** kept jobs without a requested time *)
  mutable span_ms : float;  (** last kept arrival *)
  mutable work_ms : float;  (** total actual size *)
  mutable est_work_ms : float;  (** total estimated size *)
  mutable max_size_ms : float;
}

val stats_create : unit -> stats

(** Mean actual size of the kept jobs ([nan] when none kept). *)
val mean_size : stats -> float

(** Utilization [work / (span * servers)] this trace implies. *)
val implied_load : stats -> servers:int -> float

val pp_stats : Format.formatter -> stats -> unit

(** [queries_of_jobs cfg jobs] — the eager mapping (tests, convert of
    modest files). Query ids are assigned sequentially from 0. *)
val queries_of_jobs : config -> ?stats:stats -> Swf.job array -> Query.t array

(** [stream cfg ~path ()] — the streaming mapping: opens [path]
    [tiles] times in turn (default 1), each pass offset so the trace
    repeats seamlessly after the previous pass's span, and yields
    queries on demand in constant memory. [max_jobs] truncates the
    stream. [stats], when given, is updated as the sequence is
    consumed. The sequence is ephemeral (it owns a file handle per
    pass); consume it once, to exhaustion. *)
val stream :
  config ->
  ?tiles:int ->
  ?max_jobs:int ->
  ?stats:stats ->
  path:string ->
  unit ->
  Query.t Seq.t

(** [to_queries cfg ~path ()] materializes {!stream} (replay, convert
    of small files). *)
val to_queries :
  config ->
  ?tiles:int ->
  ?max_jobs:int ->
  ?stats:stats ->
  path:string ->
  unit ->
  Query.t array
