(** Save/replay traces as a line-oriented text format with exact float
    round-trips. *)

exception Parse_error of string

(** One-line encodings (exposed for tests). *)
val string_of_query : Query.t -> string

val query_of_string : string -> Query.t

val save : string -> Query.t array -> unit

(** Raises {!Parse_error} on malformed input. *)
val load : string -> Query.t array
