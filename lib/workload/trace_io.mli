(** Save/replay traces as a line-oriented text format with exact float
    round-trips.

    Writers emit the v2 format, which carries the query's tenant as a
    trailing column; {!load} also accepts v1 files (no tenant column,
    every query anonymous) so pre-tenancy traces replay unchanged.

    {!load} validates as it parses: malformed records, non-finite or
    negative times and arrival times that go backwards all raise
    {!Parse_error} with a [file:line:] position — a broken trace file
    fails loudly instead of silently producing a broken run. *)

exception Parse_error of string

(** One-line encodings (exposed for tests). *)
val string_of_query : Query.t -> string

val query_of_string : string -> Query.t

val save : string -> Query.t array -> unit

(** Streaming save: writes the sequence one query at a time (constant
    memory — the convert path for million-job traces) and returns the
    number written. *)
val save_seq : string -> Query.t Seq.t -> int

(** Raises {!Parse_error} on malformed input. *)
val load : string -> Query.t array
