(* Bursty and diurnal arrivals: a piecewise-constant Poisson rate
   schedule (the workload shape of the elasticity literature — Kllapi
   et al., WiSeDB — that the paper's constant-rate evaluation never
   exercises).

   A [phase] holds the system for [duration] ms at [rho] times the
   trace config's base load; the schedule cycles until the requested
   query count is reached. Within a phase arrivals are Poisson at
   rate = load * rho * servers / mean_size; at a phase boundary the
   pending inter-arrival draw is discarded and restarted, which is
   exact for Poisson processes (memorylessness) and keeps the
   generator deterministic in the seed. *)

type phase = { duration : float; rho : float }

let validate phases =
  if Array.length phases = 0 then invalid_arg "Bursty: empty schedule";
  Array.iter
    (fun p ->
      if p.duration <= 0.0 then
        invalid_arg "Bursty: phase durations must be positive";
      if p.rho < 0.0 then invalid_arg "Bursty: phase loads must be non-negative")
    phases;
  if not (Array.exists (fun p -> p.rho > 0.0) phases) then
    invalid_arg "Bursty: at least one phase must have positive load"

let period phases = Array.fold_left (fun acc p -> acc +. p.duration) 0.0 phases

(* Mean load multiplier over one cycle (duration-weighted). *)
let mean_rho phases =
  Array.fold_left (fun acc p -> acc +. (p.duration *. p.rho)) 0.0 phases
  /. period phases

(* A smooth day: [steps] piecewise-constant segments of one [period],
   tracing a raised cosine from [low] (start and end of the cycle) up
   to [high] (mid-cycle). *)
let diurnal ?(steps = 8) ~period ~low ~high () =
  if steps < 2 then invalid_arg "Bursty.diurnal: steps must be >= 2";
  if period <= 0.0 then invalid_arg "Bursty.diurnal: period must be positive";
  if low < 0.0 || high < low then
    invalid_arg "Bursty.diurnal: need 0 <= low <= high";
  let pi = 4.0 *. atan 1.0 in
  Array.init steps (fun i ->
      let frac = (Float.of_int i +. 0.5) /. Float.of_int steps in
      let rho =
        low +. ((high -. low) *. 0.5 *. (1.0 -. cos (2.0 *. pi *. frac)))
      in
      { duration = period /. Float.of_int steps; rho })

(* On/off bursts: quiet at [low] for [(1-duty)*period], then a burst
   at [high] for [duty*period]. *)
let square ~period ~duty ~low ~high =
  if period <= 0.0 then invalid_arg "Bursty.square: period must be positive";
  if duty <= 0.0 || duty >= 1.0 then
    invalid_arg "Bursty.square: duty must be in (0, 1)";
  if low < 0.0 || high < low then
    invalid_arg "Bursty.square: need 0 <= low <= high";
  [|
    { duration = period *. (1.0 -. duty); rho = low };
    { duration = period *. duty; rho = high };
  |]

let generate (cfg : Trace.config) phases =
  validate phases;
  Trace.materialize cfg ~arrival_times:(fun ~mean_size rng ->
      let n = cfg.n_queries in
      let arrivals = Array.make n 0.0 in
      let n_phases = Array.length phases in
      let k = ref 0 in
      let t = ref 0.0 in
      let phase_end = ref phases.(0).duration in
      let next_phase () =
        t := !phase_end;
        k := (!k + 1) mod n_phases;
        phase_end := !phase_end +. phases.(!k).duration
      in
      let i = ref 0 in
      while !i < n do
        let rate =
          cfg.Trace.load *. phases.(!k).rho
          *. Float.of_int cfg.Trace.servers
          /. mean_size
        in
        if rate <= 0.0 then next_phase ()
        else begin
          let dt = Prng.exponential rng ~mean:(1.0 /. rate) in
          if !t +. dt <= !phase_end then begin
            t := !t +. dt;
            arrivals.(!i) <- !t;
            incr i
          end
          else next_phase ()
        end
      done;
      arrivals)
