(** The SSBM workload trace (paper Table 1): the 13 published per-query
    execution times, sampled uniformly. *)

type entry = { name : string; time_ms : float }

val queries : entry array
val count : int
val times_ms : float array

(** 10.2 ms, the paper's reported average. *)
val mean_time_ms : float

val sample : Prng.t -> entry

(** The same workload as a {!Service_dist.t}. *)
val dist : Service_dist.t

val pp_table : Format.formatter -> unit -> unit
