(* The Star Schema Benchmark workload (paper Sec 7.1, Table 1).

   The paper does not execute SSBM; it replays the 13 per-query
   execution times published by Abadi et al. (SIGMOD 2008) and samples
   queries uniformly. We do exactly the same. *)

type entry = { name : string; time_ms : float }

let queries =
  [|
    { name = "q1"; time_ms = 1.0 };
    { name = "q2"; time_ms = 1.0 };
    { name = "q3"; time_ms = 0.2 };
    { name = "q4"; time_ms = 15.5 };
    { name = "q5"; time_ms = 13.5 };
    { name = "q6"; time_ms = 11.8 };
    { name = "q7"; time_ms = 16.1 };
    { name = "q8"; time_ms = 6.9 };
    { name = "q9"; time_ms = 6.4 };
    { name = "q10"; time_ms = 3.0 };
    { name = "q11"; time_ms = 29.2 };
    { name = "q12"; time_ms = 22.4 };
    { name = "q13"; time_ms = 6.4 };
  |]

let count = Array.length queries

let times_ms = Array.map (fun q -> q.time_ms) queries

let mean_time_ms = Arrayx.sum_float times_ms /. Float.of_int count

let sample rng = queries.(Prng.int rng count)

let dist = Service_dist.empirical times_ms

let pp_table ppf () =
  Fmt.pf ppf "SSBM query execution times (ms), from Abadi et al.:@.";
  Array.iter (fun q -> Fmt.pf ppf "  %-4s %6.1f@." q.name q.time_ms) queries;
  Fmt.pf ppf "  %-4s %6.1f@." "avg" mean_time_ms
