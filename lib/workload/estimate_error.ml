(* Execution-time estimation error (paper Sec 7.5).

   Decision makers see the estimated execution time; the real execution
   time is the estimate scaled by a Gaussian factor N(1, sigma^2).
   A negative or near-zero factor would be nonsensical (queries cannot
   run in negative time), so draws are clamped below at [floor]. *)

type t = { sigma2 : float; floor : float }

let none = { sigma2 = 0.0; floor = 0.05 }

let gaussian ?(floor = 0.05) ~sigma2 () =
  if sigma2 < 0.0 then invalid_arg "Estimate_error.gaussian: sigma2 < 0";
  if floor <= 0.0 then invalid_arg "Estimate_error.gaussian: floor <= 0";
  { sigma2; floor }

let sigma2 t = t.sigma2

let is_none t = t.sigma2 = 0.0

(* Scale factor for one query. *)
let draw_factor t rng =
  if t.sigma2 = 0.0 then 1.0
  else begin
    let f = Prng.gaussian rng ~mu:1.0 ~sigma:(sqrt t.sigma2) in
    Float.max t.floor f
  end

(* Real execution time given the estimate. *)
let actual_of_estimate t rng ~estimate = estimate *. draw_factor t rng

let pp ppf t = Fmt.pf ppf "N(1, %g)" t.sigma2
