(* Query execution-time distributions (paper Sec 7.1).

   All times are in milliseconds, matching the paper's parameters:
   exponential with mean 20 ms; Pareto with x_min = 1 ms and index 1;
   SSBM replays the published per-query times (see {!Ssbm}). *)

type t =
  | Deterministic of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { x_min : float; alpha : float; cap : float option }
  | Empirical of float array

let deterministic v =
  if v < 0.0 then invalid_arg "Service_dist.deterministic: negative time";
  Deterministic v

let uniform ~lo ~hi =
  if lo < 0.0 || hi < lo then invalid_arg "Service_dist.uniform: bad range";
  Uniform { lo; hi }

let exponential ~mean =
  if mean <= 0.0 then invalid_arg "Service_dist.exponential: mean must be > 0";
  Exponential { mean }

let pareto ?cap ~x_min ~alpha () =
  if x_min <= 0.0 || alpha <= 0.0 then
    invalid_arg "Service_dist.pareto: parameters must be positive";
  (match cap with
  | Some c when c <= x_min -> invalid_arg "Service_dist.pareto: cap <= x_min"
  | Some _ | None -> ());
  Pareto { x_min; alpha; cap }

let empirical values =
  if Array.length values = 0 then
    invalid_arg "Service_dist.empirical: empty sample set";
  Array.iter
    (fun v -> if v < 0.0 then invalid_arg "Service_dist.empirical: negative time")
    values;
  Empirical (Array.copy values)

let sample t rng =
  match t with
  | Deterministic v -> v
  | Uniform { lo; hi } -> lo +. ((hi -. lo) *. Prng.float rng)
  | Exponential { mean } -> Prng.exponential rng ~mean
  | Pareto { x_min; alpha; cap } -> begin
    let v = Prng.pareto rng ~x_min ~alpha in
    match cap with Some c -> Float.min v c | None -> v
  end
  | Empirical values -> values.(Prng.int rng (Array.length values))

(* Theoretical mean where it exists; [None] for heavy tails
   (Pareto with alpha <= 1 has an infinite mean — the paper relies on
   the finite-sample mean instead, Sec 7.1). *)
let theoretical_mean = function
  | Deterministic v -> Some v
  | Uniform { lo; hi } -> Some ((lo +. hi) /. 2.0)
  | Exponential { mean } -> Some mean
  | Pareto { x_min; alpha; cap = None } ->
    if alpha > 1.0 then Some (alpha *. x_min /. (alpha -. 1.0)) else None
  | Pareto { cap = Some _; _ } -> None
  | Empirical values ->
    Some (Arrayx.sum_float values /. Float.of_int (Array.length values))

let empirical_mean t rng ~samples =
  if samples <= 0 then invalid_arg "Service_dist.empirical_mean: samples";
  let acc = ref 0.0 in
  for _ = 1 to samples do
    acc := !acc +. sample t rng
  done;
  !acc /. Float.of_int samples

let pp ppf = function
  | Deterministic v -> Fmt.pf ppf "deterministic(%g)" v
  | Uniform { lo; hi } -> Fmt.pf ppf "uniform[%g, %g]" lo hi
  | Exponential { mean } -> Fmt.pf ppf "exp(mean=%g)" mean
  | Pareto { x_min; alpha; cap } ->
    Fmt.pf ppf "pareto(x_min=%g, alpha=%g%a)" x_min alpha
      Fmt.(option (fun ppf c -> pf ppf ", cap=%g" c))
      cap
  | Empirical values -> Fmt.pf ppf "empirical(%d values)" (Array.length values)
