(** Execution-time estimation error (paper Sec 7.5): the real execution
    time is the estimate scaled by a draw from N(1, sigma^2), clamped
    below to stay positive. *)

type t

(** Perfect estimation (scale factor identically 1). *)
val none : t

(** [gaussian ~sigma2 ()] with the paper's variances 0.2 and 1.0;
    [floor] clamps the factor (default 0.05). *)
val gaussian : ?floor:float -> sigma2:float -> unit -> t

val sigma2 : t -> float
val is_none : t -> bool

val draw_factor : t -> Prng.t -> float
val actual_of_estimate : t -> Prng.t -> estimate:float -> float

val pp : Format.formatter -> t -> unit
