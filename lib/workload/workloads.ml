(* The three named workloads of the evaluation (Sec 7.1) and the SLA
   assignment rules for SLA-A and SLA-B. *)

type kind = Exp | Pareto | Ssbm_wl

type sla_profile = Sla_a | Sla_b

let all_kinds = [ Exp; Pareto; Ssbm_wl ]
let all_profiles = [ Sla_a; Sla_b ]

let kind_name = function Exp -> "Exp" | Pareto -> "Pareto" | Ssbm_wl -> "SSBM"
let profile_name = function Sla_a -> "SLA-A" | Sla_b -> "SLA-B"

let dist = function
  | Exp -> Service_dist.exponential ~mean:20.0
  | Pareto -> Service_dist.pareto ~x_min:1.0 ~alpha:1.0 ()
  | Ssbm_wl -> Ssbm.dist

(* The mu that parameterizes the SLA shapes (Fig 16): the workload's
   mean execution time. Pareto(alpha = 1) has no mean; the paper reports
   finite-sample means "around 25 ms", which we adopt as the nominal
   value. *)
let nominal_mean_ms = function
  | Exp -> 20.0
  | Pareto -> 25.0
  | Ssbm_wl -> Ssbm.mean_time_ms

(* SLA assignment. SLA-A: everyone gets the 1/0 SLA. SLA-B: for Exp
   and Pareto the customer/employee identity is drawn 10:1 independent
   of execution time; for SSBM it is correlated — queries longer than
   20 ms come from employees (Sec 7.1). *)
let assign_sla kind profile ~mu ~size rng =
  match profile with
  | Sla_a -> Sla_profiles.sla_a ~mu
  | Sla_b -> begin
    match kind with
    | Exp | Pareto ->
      let total =
        Sla_profiles.sla_b_customer_weight + Sla_profiles.sla_b_employee_weight
      in
      if Prng.int rng total < Sla_profiles.sla_b_customer_weight then
        Sla_profiles.sla_b_customer ~mu
      else Sla_profiles.sla_b_employee ~mu
    | Ssbm_wl ->
      if size > Sla_profiles.ssbm_employee_threshold_ms then
        Sla_profiles.sla_b_employee ~mu
      else Sla_profiles.sla_b_customer ~mu
  end
