(* Trace persistence: save generated workloads to a simple CSV-ish
   text format and replay them later, so an interesting run (e.g. a
   heavy-tailed trace with a pathological monster query) can be shared
   and re-analysed byte-for-byte.

   Format (one query per line, after a version header):
     id,arrival,size,est_size,penalty,b1:g1|b2:g2|...
   Floats are printed with %.17g so round-trips are exact. *)

let header = "# slatree-trace v1"

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let string_of_sla sla =
  let levels =
    Sla.levels sla
    |> List.map (fun { Sla.bound; gain } -> Printf.sprintf "%.17g:%.17g" bound gain)
    |> String.concat "|"
  in
  Printf.sprintf "%.17g,%s" (Sla.penalty sla) levels

let string_of_query q =
  Printf.sprintf "%d,%.17g,%.17g,%.17g,%s" q.Query.id q.Query.arrival
    q.Query.size q.Query.est_size
    (string_of_sla q.Query.sla)

let float_of_field name s =
  match float_of_string_opt s with
  | Some v -> v
  | None -> parse_error "bad %s: %S" name s

let sla_of_strings ~penalty ~levels_str =
  let levels =
    String.split_on_char '|' levels_str
    |> List.map (fun pair ->
           match String.split_on_char ':' pair with
           | [ b; g ] ->
             {
               Sla.bound = float_of_field "level bound" b;
               gain = float_of_field "level gain" g;
             }
           | _ -> parse_error "bad SLA level: %S" pair)
  in
  Sla.make ~levels ~penalty

let query_of_string line =
  match String.split_on_char ',' line with
  | [ id; arrival; size; est_size; penalty; levels_str ] ->
    let id =
      match int_of_string_opt id with
      | Some v -> v
      | None -> parse_error "bad id: %S" id
    in
    let sla =
      try sla_of_strings ~penalty:(float_of_field "penalty" penalty) ~levels_str
      with Sla.Invalid msg -> parse_error "invalid SLA: %s" msg
    in
    Query.make ~id
      ~arrival:(float_of_field "arrival" arrival)
      ~size:(float_of_field "size" size)
      ~est_size:(float_of_field "est_size" est_size)
      ~sla ()
  | _ -> parse_error "bad query line: %S" line

let save path queries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      Array.iter
        (fun q ->
          output_string oc (string_of_query q);
          output_char oc '\n')
        queries)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let first = try input_line ic with End_of_file -> parse_error "empty file" in
      if first <> header then parse_error "missing header (got %S)" first;
      let rec go acc =
        match input_line ic with
        | line when String.trim line = "" -> go acc
        | line -> go (query_of_string line :: acc)
        | exception End_of_file -> List.rev acc
      in
      Array.of_list (go []))
