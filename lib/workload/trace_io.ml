(* Trace persistence: save generated workloads to a simple CSV-ish
   text format and replay them later, so an interesting run (e.g. a
   heavy-tailed trace with a pathological monster query) can be shared
   and re-analysed byte-for-byte.

   Format (one query per line, after a version header):
     v2: id,arrival,size,est_size,penalty,b1:g1|b2:g2|...,tenant
     v1: the same without the trailing tenant column
   Floats are printed with %.17g so round-trips are exact. Writers
   emit v2; [load] accepts both versions and treats a missing tenant
   column as tenant 0 (anonymous), so pre-tenancy trace files replay
   unchanged.

   Loading validates: every numeric field must be finite, times must
   be non-negative, and arrivals must be non-decreasing (the simulator
   replays the array in order and silently mis-schedules otherwise).
   Violations raise [Parse_error] carrying [file:line:]. *)

let header = "# slatree-trace v2"
let header_v1 = "# slatree-trace v1"

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

let string_of_sla sla =
  let levels =
    Sla.levels sla
    |> List.map (fun { Sla.bound; gain } -> Printf.sprintf "%.17g:%.17g" bound gain)
    |> String.concat "|"
  in
  Printf.sprintf "%.17g,%s" (Sla.penalty sla) levels

let string_of_query q =
  Printf.sprintf "%d,%.17g,%.17g,%.17g,%s,%d" q.Query.id q.Query.arrival
    q.Query.size q.Query.est_size
    (string_of_sla q.Query.sla)
    q.Query.tenant

let float_of_field name s =
  match float_of_string_opt s with
  | Some v when not (Float.is_finite v) -> parse_error "%s is not finite: %S" name s
  | Some v -> v
  | None -> parse_error "bad %s: %S" name s

let nonneg_of_field name s =
  let v = float_of_field name s in
  if v < 0.0 then parse_error "%s is negative: %S" name s;
  v

let sla_of_strings ~penalty ~levels_str =
  let levels =
    String.split_on_char '|' levels_str
    |> List.map (fun pair ->
           match String.split_on_char ':' pair with
           | [ b; g ] ->
             {
               Sla.bound = float_of_field "level bound" b;
               gain = float_of_field "level gain" g;
             }
           | _ -> parse_error "bad SLA level: %S" pair)
  in
  Sla.make ~levels ~penalty

let query_of_string line =
  let fields, tenant =
    match String.split_on_char ',' line with
    | [ _; _; _; _; _; _ ] as fields -> (fields, 0)
    | [ id; arrival; size; est_size; penalty; levels_str; tenant ] ->
      let tenant =
        match int_of_string_opt tenant with
        | Some v when v >= 0 -> v
        | Some _ -> parse_error "tenant is negative: %S" tenant
        | None -> parse_error "bad tenant: %S" tenant
      in
      ([ id; arrival; size; est_size; penalty; levels_str ], tenant)
    | _ -> parse_error "bad query line: %S" line
  in
  match fields with
  | [ id; arrival; size; est_size; penalty; levels_str ] ->
    let id =
      match int_of_string_opt id with
      | Some v -> v
      | None -> parse_error "bad id: %S" id
    in
    let sla =
      try sla_of_strings ~penalty:(float_of_field "penalty" penalty) ~levels_str
      with Sla.Invalid msg -> parse_error "invalid SLA: %s" msg
    in
    (try
       Query.make ~id
         ~arrival:(nonneg_of_field "arrival" arrival)
         ~size:(nonneg_of_field "size" size)
         ~est_size:(nonneg_of_field "est_size" est_size)
         ~sla ~tenant ()
     with Invalid_argument msg -> parse_error "invalid query: %s" msg)
  | _ -> assert false

let save path queries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      Array.iter
        (fun q ->
          output_string oc (string_of_query q);
          output_char oc '\n')
        queries)

let save_seq path queries =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc header;
      output_char oc '\n';
      let count = ref 0 in
      Seq.iter
        (fun q ->
          output_string oc (string_of_query q);
          output_char oc '\n';
          incr count)
        queries;
      !count)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let lineno = ref 0 in
      let at fmt = parse_error ("%s:%d: " ^^ fmt) path !lineno in
      let input_line_opt () =
        match input_line ic with
        | line ->
          incr lineno;
          Some line
        | exception End_of_file -> None
      in
      (match input_line_opt () with
      | None -> parse_error "%s: empty file" path
      | Some first when first <> header && first <> header_v1 ->
        at "missing header (got %S)" first
      | Some _ -> ());
      let rec go acc last_arrival =
        match input_line_opt () with
        | None -> List.rev acc
        | Some line when String.trim line = "" -> go acc last_arrival
        | Some line ->
          let q =
            try query_of_string line
            with Parse_error msg -> at "%s" msg
          in
          if q.Query.arrival < last_arrival then
            at "arrival %.17g goes backwards (previous %.17g)" q.Query.arrival
              last_arrival;
          go (q :: acc) q.Query.arrival
      in
      Array.of_list (go [] 0.0))
