(** The evaluation's three workloads and two SLA profiles (Sec 7.1). *)

type kind =
  | Exp  (** exponential service times, mean 20 ms *)
  | Pareto  (** Pareto service times, x_min 1 ms, index 1 *)
  | Ssbm_wl  (** SSBM trace (Table 1), uniform sampling *)

type sla_profile = Sla_a | Sla_b

val all_kinds : kind list
val all_profiles : sla_profile list
val kind_name : kind -> string
val profile_name : sla_profile -> string

val dist : kind -> Service_dist.t

(** The [mu] that parameterizes the SLA shapes: 20 ms (Exp), 25 ms
    (Pareto, finite-sample nominal), 10.2 ms (SSBM). *)
val nominal_mean_ms : kind -> float

(** Draw the SLA for a query of estimated size [size] (ms). Under SLA-B,
    Exp/Pareto draw customer:employee 10:1 independent of size; SSBM
    correlates by the 20 ms threshold. *)
val assign_sla :
  kind -> sla_profile -> mu:float -> size:float -> Prng.t -> Sla.t
