(** Query execution-time distributions (paper Sec 7.1). Times in ms. *)

type t

val deterministic : float -> t
val uniform : lo:float -> hi:float -> t
val exponential : mean:float -> t

(** Heavy-tailed Pareto; [cap] optionally truncates draws (off in the
    paper's configuration). *)
val pareto : ?cap:float -> x_min:float -> alpha:float -> unit -> t

(** Uniform sampling over a fixed set of values (SSBM-style). *)
val empirical : float array -> t

val sample : t -> Prng.t -> float

(** [None] when the mean does not exist (Pareto, alpha <= 1) or is not
    closed-form (capped Pareto). *)
val theoretical_mean : t -> float option

(** Monte-Carlo mean over [samples] draws. *)
val empirical_mean : t -> Prng.t -> samples:int -> float

val pp : Format.formatter -> t -> unit
