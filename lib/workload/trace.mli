(** Materialized simulation inputs: Poisson arrivals, per-query sizes,
    SLAs and estimation errors, all derived from one seed. *)

type config = {
  kind : Workloads.kind;
  profile : Workloads.sla_profile;
  load : float;
      (** system load rho; the arrival rate is calibrated against the
          trace's empirical mean size so utilization equals rho even
          for heavy-tailed workloads *)
  servers : int;
  n_queries : int;
  error : Estimate_error.t;
  seed : int;
}

val config :
  ?error:Estimate_error.t ->
  kind:Workloads.kind ->
  profile:Workloads.sla_profile ->
  load:float ->
  servers:int ->
  n_queries:int ->
  seed:int ->
  unit ->
  config

(** Nominal queries/ms if the workload mean held exactly (the realized
    rate is re-calibrated per trace). *)
val arrival_rate : config -> float

(** Generate the queries, ordered and numbered by arrival. Independent
    PRNG sub-streams per component keep comparisons paired across
    configuration changes. *)
val generate : config -> Query.t array

(** Generate a trace around a custom arrival process: sizes, SLAs and
    estimation errors are drawn exactly as {!generate} draws them (same
    sub-streams), and [arrival_times ~mean_size rng] supplies the
    [n_queries] non-decreasing arrival instants. This is the extension
    point for non-homogeneous processes ({!Bursty}). *)
val materialize :
  config ->
  arrival_times:(mean_size:float -> Prng.t -> float array) ->
  Query.t array

(** Copy of the config with a different server count (the generated
    trace itself is reused for capacity-planning ground truth). *)
val with_servers : config -> int -> config
