(** Streaming reader/writer for the Standard Workload Format (SWF) of
    the Parallel Workloads Archive — the format of the public logs of
    real parallel clusters (Feitelson et al.,
    https://www.cs.huji.ac.il/labs/parallel/workload/).

    An SWF file is a sequence of header comment lines ([; Key: value])
    followed by one job per line: 18 whitespace-separated numeric
    fields, with [-1] marking a missing value. Real archive logs run
    to millions of jobs, so the reader never materializes a file: it
    exposes a pull iterator ({!next} / {!to_seq}) and a bounded-chunk
    reader ({!read_chunk}), both O(1) in the file length. *)

(** One job record — the 18 standard fields. Times are in seconds (as
    in the file); [-1.0] / [-1] mark missing values, as in the
    format. *)
type job = {
  job_id : int;  (** 1: job number *)
  submit : float;  (** 2: submit time, seconds since log start *)
  wait : float;  (** 3: wait time, seconds *)
  run_time : float;  (** 4: run time, seconds *)
  procs : int;  (** 5: number of allocated processors *)
  cpu_time : float;  (** 6: average CPU time used, seconds *)
  memory : float;  (** 7: used memory, KB per processor *)
  req_procs : int;  (** 8: requested number of processors *)
  req_time : float;  (** 9: requested (user-estimated) time, seconds *)
  req_memory : float;  (** 10: requested memory, KB per processor *)
  status : int;  (** 11: completion status (1 = completed) *)
  user : int;  (** 12: user id *)
  group : int;  (** 13: group id *)
  app : int;  (** 14: executable (application) number *)
  queue : int;  (** 15: queue number *)
  partition : int;  (** 16: partition number *)
  preceding : int;  (** 17: preceding job number *)
  think_time : float;  (** 18: think time from preceding job, seconds *)
}

(** Raised on a malformed line; the message carries [file:line:]. *)
exception Parse_error of string

type reader

(** [open_file path] opens the log and eagerly consumes the leading
    header-comment block (available as {!metadata}); jobs then stream
    on demand. Raises [Sys_error] if the file cannot be opened. *)
val open_file : string -> reader

val close : reader -> unit

(** [with_file path f] is [f (open_file path)] with a guaranteed
    close. *)
val with_file : string -> (reader -> 'a) -> 'a

val path : reader -> string

(** Header metadata, in file order: [; Key: value] comment lines
    parsed into [(key, value)]; bare comments appear as [("", text)]. *)
val metadata : reader -> (string * string) list

(** [find_meta r key] is the value of the first header field whose key
    matches [key] case-insensitively. *)
val find_meta : reader -> string -> string option

(** Next job, skipping blank and mid-file comment lines. [None] at end
    of file. Lines with fewer than 18 fields are padded with missing
    markers (some archive tools truncate trailing [-1]s); at least the
    first four fields (job, submit, wait, run time) must be present.
    Raises {!Parse_error} (with [file:line:]) on anything
    non-numeric. *)
val next : reader -> job option

(** Up to [max] further jobs (fewer only at end of file) — the bounded
    chunk shape: a million-job log streams through a [max]-sized
    buffer in constant memory. Raises [Invalid_argument] if
    [max <= 0]. *)
val read_chunk : reader -> max:int -> job array

(** The remaining jobs as an on-demand sequence. The sequence is
    ephemeral: it pulls from the reader, so consume it once. *)
val to_seq : reader -> job Seq.t

(** [fold path ~init ~f] streams the whole file through [f] with a
    guaranteed close. *)
val fold : string -> init:'a -> f:('a -> job -> 'a) -> 'a

(** {2 Writing} — round-trip support for tests, fixtures and bench. *)

(** The job as one SWF data line (no newline). Integral values print
    without a fractional part, so a parse/print round trip of an
    archive line is stable. *)
val line_of_job : job -> string

(** [save path ~header jobs] writes header comment lines (without the
    leading [";"]) and one line per job. *)
val save : string -> ?header:string list -> job array -> unit
