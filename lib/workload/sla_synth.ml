(* SLA synthesis over real traces (see sla_synth.mli for the mapping).

   Determinism contract: the same (file, classes, stretches,
   time_scale, load_factor, seed) produce bit-identical queries,
   however the stream is consumed (one pull at a time, bounded chunks,
   or eagerly). The class draw is keyed on the query index through
   [Prng.split_key], so it depends only on (seed, index) — not on
   chunk boundaries and not on how many tiles precede the query. *)

type sla_class = {
  cls_name : string;
  weight : int;
  gains : float array;
  penalty : float;
}

type config = {
  classes : sla_class array;
  stretches : float array;
  time_scale : float;
  load_factor : float;
  seed : int;
}

(* Default tiers, in the spirit of the paper's SLA-B (a small premium
   class, a broad cheap class): gold pays 5 on-time and a real
   penalty, bronze is best-effort. Bounds come from the job's own
   requested time, so "on time" means "within stretch x what the user
   asked for". *)
let default_classes =
  [|
    { cls_name = "gold"; weight = 1; gains = [| 5.0; 2.0 |]; penalty = 5.0 };
    { cls_name = "silver"; weight = 3; gains = [| 2.0; 1.0 |]; penalty = 1.0 };
    { cls_name = "bronze"; weight = 6; gains = [| 1.0; 0.5 |]; penalty = 0.0 };
  |]

let default_stretches = [| 1.0; 3.0 |]

let validate cfg =
  if Array.length cfg.classes = 0 then
    invalid_arg "Sla_synth: need at least one SLA class";
  if Array.length cfg.stretches = 0 then
    invalid_arg "Sla_synth: need at least one stretch tier";
  Array.iteri
    (fun i s ->
      if not (Float.is_finite s && s > 0.0) then
        invalid_arg "Sla_synth: stretches must be positive and finite";
      if i > 0 && s <= cfg.stretches.(i - 1) then
        invalid_arg "Sla_synth: stretches must be strictly increasing")
    cfg.stretches;
  Array.iter
    (fun c ->
      if c.weight <= 0 then
        invalid_arg
          (Printf.sprintf "Sla_synth: class %s: weight must be positive"
             c.cls_name);
      if Array.length c.gains <> Array.length cfg.stretches then
        invalid_arg
          (Printf.sprintf
             "Sla_synth: class %s: %d gains for %d stretch tiers" c.cls_name
             (Array.length c.gains)
             (Array.length cfg.stretches));
      if c.penalty < 0.0 then
        invalid_arg
          (Printf.sprintf "Sla_synth: class %s: negative penalty" c.cls_name);
      Array.iteri
        (fun i g ->
          if not (Float.is_finite g && g > 0.0) then
            invalid_arg
              (Printf.sprintf "Sla_synth: class %s: gains must be positive"
                 c.cls_name);
          if i > 0 && g >= c.gains.(i - 1) then
            invalid_arg
              (Printf.sprintf
                 "Sla_synth: class %s: gains must be strictly decreasing"
                 c.cls_name))
        c.gains)
    cfg.classes;
  if not (Float.is_finite cfg.time_scale && cfg.time_scale > 0.0) then
    invalid_arg "Sla_synth: time_scale must be positive";
  if not (Float.is_finite cfg.load_factor && cfg.load_factor > 0.0) then
    invalid_arg "Sla_synth: load_factor must be positive"

let config ?(classes = default_classes) ?(stretches = default_stretches)
    ?(time_scale = 1.0) ?(load_factor = 1.0) ?(seed = 1) () =
  let cfg = { classes; stretches; time_scale; load_factor; seed } in
  validate cfg;
  cfg

(* "gold:1:5,2:5;silver:3:2,1:1" — name:weight:gains:penalty. *)
let classes_doc =
  "semicolon-separated name:weight:g1,g2,...:penalty entries, one gain per \
   stretch tier, e.g. 'gold:1:5,2:5;silver:3:2,1:1;bronze:6:1,0.5:0'"

let classes_of_string s =
  let ( let* ) r f = Result.bind r f in
  let float_of name v =
    match float_of_string_opt v with
    | Some f when Float.is_finite f -> Ok f
    | Some _ | None -> Error (Printf.sprintf "bad %s: %S" name v)
  in
  let parse_one entry =
    match String.split_on_char ':' (String.trim entry) with
    | [ name; weight; gains; penalty ] ->
      let* weight =
        match int_of_string_opt weight with
        | Some w when w > 0 -> Ok w
        | Some _ | None -> Error (Printf.sprintf "bad weight: %S" weight)
      in
      let* gains =
        String.split_on_char ',' gains
        |> List.fold_left
             (fun acc g ->
               let* acc = acc in
               let* g = float_of "gain" g in
               Ok (g :: acc))
             (Ok [])
        |> Result.map (fun l -> Array.of_list (List.rev l))
      in
      let* penalty = float_of "penalty" penalty in
      Ok { cls_name = name; weight; gains; penalty }
    | _ ->
      Error
        (Printf.sprintf "bad class %S (expected name:weight:gains:penalty)"
           entry)
  in
  String.split_on_char ';' s
  |> List.filter (fun e -> String.trim e <> "")
  |> List.fold_left
       (fun acc e ->
         let* acc = acc in
         let* c = parse_one e in
         Ok (c :: acc))
       (Ok [])
  |> Result.map (fun l -> Array.of_list (List.rev l))
  |> function
  | Ok [||] -> Error "empty class spec"
  | r -> r

(* ------------------------------------------------------------------ *)
(* Stats *)

type stats = {
  mutable read : int;
  mutable kept : int;
  mutable dropped : int;
  mutable clamped : int;
  mutable no_estimate : int;
  mutable span_ms : float;
  mutable work_ms : float;
  mutable est_work_ms : float;
  mutable max_size_ms : float;
}

let stats_create () =
  {
    read = 0;
    kept = 0;
    dropped = 0;
    clamped = 0;
    no_estimate = 0;
    span_ms = 0.0;
    work_ms = 0.0;
    est_work_ms = 0.0;
    max_size_ms = 0.0;
  }

let mean_size s =
  if s.kept = 0 then Float.nan else s.work_ms /. Float.of_int s.kept

let implied_load s ~servers =
  if servers <= 0 then invalid_arg "Sla_synth.implied_load: servers <= 0";
  if s.span_ms <= 0.0 then Float.nan
  else s.work_ms /. (s.span_ms *. Float.of_int servers)

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>jobs: %d read, %d kept, %d dropped, %d clamped, %d without \
     estimate@,span: %.0f ms, work %.0f ms (est %.0f ms), mean size %.1f \
     ms, max %.0f ms@]"
    s.read s.kept s.dropped s.clamped s.no_estimate s.span_ms s.work_ms
    s.est_work_ms (mean_size s) s.max_size_ms

(* ------------------------------------------------------------------ *)
(* The mapping *)

(* Weighted class draw, keyed on the query index: [split_key] does not
   advance the master, so the draw for index i is independent of every
   other draw and of chunking. *)
let pick_class cfg master ~index =
  let total = Array.fold_left (fun a c -> a + c.weight) 0 cfg.classes in
  let d = Prng.int (Prng.split_key master ~key:index) total in
  let rec go i acc =
    let acc = acc + cfg.classes.(i).weight in
    if d < acc then cfg.classes.(i) else go (i + 1) acc
  in
  go 0 0

let sla_of cfg cls ~est =
  let levels =
    Array.to_list
      (Array.mapi
         (fun k stretch -> { Sla.bound = stretch *. est; gain = cls.gains.(k) })
         cfg.stretches)
  in
  Sla.make ~levels ~penalty:cls.penalty

(* Per-stream synthesis state. [t0] rebases each pass to 0; [last]
   enforces monotone arrivals across clamps and tile boundaries;
   [offset] shifts pass k so the trace repeats seamlessly. *)
type synth = {
  cfg : config;
  master : Prng.t;
  st : stats;
  mutable index : int;
  mutable t0 : float;  (** first kept submit of the current pass *)
  mutable have_t0 : bool;
  mutable last : float;  (** last emitted arrival *)
  mutable offset : float;
  mutable pass_kept : int;
}

let synth_create cfg ?stats () =
  validate cfg;
  {
    cfg;
    master = Prng.create cfg.seed;
    st = (match stats with Some s -> s | None -> stats_create ());
    index = 0;
    t0 = 0.0;
    have_t0 = false;
    last = 0.0;
    offset = 0.0;
    pass_kept = 0;
  }

let keepable (j : Swf.job) =
  Float.is_finite j.Swf.submit
  && j.Swf.submit >= 0.0
  && Float.is_finite j.Swf.run_time
  && j.Swf.run_time > 0.0

let emit sy (j : Swf.job) =
  let cfg = sy.cfg in
  sy.st.read <- sy.st.read + 1;
  if not (keepable j) then begin
    sy.st.dropped <- sy.st.dropped + 1;
    None
  end
  else begin
    if not sy.have_t0 then begin
      sy.t0 <- j.Swf.submit;
      sy.have_t0 <- true
    end;
    let raw =
      sy.offset
      +. (j.Swf.submit -. sy.t0) *. cfg.time_scale /. cfg.load_factor
    in
    let arrival =
      if raw < sy.last then begin
        sy.st.clamped <- sy.st.clamped + 1;
        sy.last
      end
      else raw
    in
    let size = j.Swf.run_time *. cfg.time_scale in
    let est =
      if Float.is_finite j.Swf.req_time && j.Swf.req_time > 0.0 then
        j.Swf.req_time *. cfg.time_scale
      else begin
        sy.st.no_estimate <- sy.st.no_estimate + 1;
        size
      end
    in
    let cls = pick_class cfg sy.master ~index:sy.index in
    let q =
      Query.make ~id:sy.index ~arrival ~size ~est_size:est
        ~sla:(sla_of cfg cls ~est) ()
    in
    sy.index <- sy.index + 1;
    sy.last <- arrival;
    sy.pass_kept <- sy.pass_kept + 1;
    sy.st.kept <- sy.st.kept + 1;
    sy.st.span_ms <- arrival;
    sy.st.work_ms <- sy.st.work_ms +. size;
    sy.st.est_work_ms <- sy.st.est_work_ms +. est;
    if size > sy.st.max_size_ms then sy.st.max_size_ms <- size;
    Some q
  end

(* A tile boundary: the next pass starts one mean inter-arrival after
   the last emitted arrival, so the tiled trace keeps the pass's
   arrival rate instead of stacking a burst at the seam. *)
let end_pass sy =
  let gap =
    if sy.pass_kept > 1 then (sy.last -. sy.offset) /. Float.of_int sy.pass_kept
    else sy.cfg.time_scale
  in
  sy.offset <- sy.last +. gap;
  sy.have_t0 <- false;
  sy.pass_kept <- 0

let queries_of_jobs cfg ?stats jobs =
  let sy = synth_create cfg ?stats () in
  let out = ref [] in
  Array.iter
    (fun j -> match emit sy j with Some q -> out := q :: !out | None -> ())
    jobs;
  Array.of_list (List.rev !out)

let stream cfg ?(tiles = 1) ?max_jobs ?stats ~path () =
  if tiles < 1 then invalid_arg "Sla_synth.stream: tiles must be >= 1";
  (match max_jobs with
  | Some m when m < 1 -> invalid_arg "Sla_synth.stream: max_jobs must be >= 1"
  | _ -> ());
  let sy = synth_create cfg ?stats () in
  let budget_left () =
    match max_jobs with Some m -> sy.index < m | None -> true
  in
  (* One live reader at a time; each tile is a fresh pass over the
     file. The sequence owns the handle — abandoning it mid-way leaks
     the fd until GC, which is why the interface says consume once to
     exhaustion (every in-repo consumer does). *)
  let rec pass tile reader () =
    if not (budget_left ()) then begin
      Swf.close reader;
      Seq.Nil
    end
    else
      match Swf.next reader with
      | Some j -> (
        match emit sy j with
        | Some q -> Seq.Cons (q, pass tile reader)
        | None -> pass tile reader ())
      | None ->
        Swf.close reader;
        end_pass sy;
        next_tile (tile + 1) ()
  and next_tile tile () =
    if tile >= tiles || not (budget_left ()) then Seq.Nil
    else pass tile (Swf.open_file path) ()
  in
  next_tile 0

let to_queries cfg ?tiles ?max_jobs ?stats ~path () =
  Array.of_seq (stream cfg ?tiles ?max_jobs ?stats ~path ())
