(* Trace generation: Poisson arrivals + per-query sizes and SLAs.

   A trace is the full, materialized input to one simulation run. The
   same trace can be replayed against different policies or different
   server counts (as the capacity-planning ground truth requires,
   Sec 7.4).

   Load calibration: the paper controls the *system load* directly
   ("with the system load set to 0.9"). For Exp and SSBM the nominal
   workload mean equals the true mean, but Pareto(alpha = 1) has an
   infinite theoretical mean and a slowly-growing finite-sample mean,
   so calibrating against the nominal 25 ms would leave the servers
   badly under-utilized. We therefore set the arrival rate against the
   *empirical* mean of the actual sizes of the generated trace:
   utilization genuinely equals [load] for every workload. SLA bounds
   keep using the nominal mean (they are business constants). *)

type config = {
  kind : Workloads.kind;
  profile : Workloads.sla_profile;
  load : float;  (** system load rho = lambda * mean_size / servers *)
  servers : int;
  n_queries : int;
  error : Estimate_error.t;
  seed : int;
}

let config ?(error = Estimate_error.none) ~kind ~profile ~load ~servers
    ~n_queries ~seed () =
  if load <= 0.0 then invalid_arg "Trace.config: load must be positive";
  if servers <= 0 then invalid_arg "Trace.config: servers must be positive";
  if n_queries <= 0 then invalid_arg "Trace.config: n_queries must be positive";
  { kind; profile; load; servers; n_queries; error; seed }

(* Generate all queries of a trace around a pluggable arrival process.
   Independent PRNG streams for the arrival process, the size draws,
   the SLA identities and the estimation errors: changing one knob
   (e.g. the error sigma) leaves the other draws untouched, which
   keeps the robustness comparison (Tables 5-6) paired.

   [arrival_times ~mean_size rng] must return [cfg.n_queries]
   non-decreasing times; it sees the trace's empirical mean size so it
   can calibrate its rate the same way the homogeneous process does.
   This is the extension point non-homogeneous generators (Bursty's
   piecewise-constant rate schedule) plug into. *)
let materialize cfg ~arrival_times =
  let master = Prng.create cfg.seed in
  let rng_arrival = Prng.split master in
  let rng_size = Prng.split master in
  let rng_sla = Prng.split master in
  let rng_err = Prng.split master in
  let dist = Workloads.dist cfg.kind in
  let mu = Workloads.nominal_mean_ms cfg.kind in
  (* Sizes first: the arrival rate is calibrated on their mean. *)
  let est_sizes =
    Array.init cfg.n_queries (fun _ -> Service_dist.sample dist rng_size)
  in
  let sizes =
    Array.map
      (fun est -> Estimate_error.actual_of_estimate cfg.error rng_err ~estimate:est)
      est_sizes
  in
  let mean_size =
    Arrayx.sum_float sizes /. Float.of_int cfg.n_queries
  in
  let arrivals = arrival_times ~mean_size rng_arrival in
  if Array.length arrivals <> cfg.n_queries then
    invalid_arg "Trace.materialize: arrival_times returned the wrong count";
  Array.init cfg.n_queries (fun id ->
      let est_size = est_sizes.(id) in
      let sla =
        Workloads.assign_sla cfg.kind cfg.profile ~mu ~size:est_size rng_sla
      in
      Query.make ~id ~arrival:arrivals.(id) ~size:sizes.(id) ~est_size ~sla ())

let generate cfg =
  materialize cfg ~arrival_times:(fun ~mean_size rng ->
      let arrival_rate = cfg.load *. Float.of_int cfg.servers /. mean_size in
      let mean_interarrival = 1.0 /. arrival_rate in
      let t = ref 0.0 in
      Array.init cfg.n_queries (fun _ ->
          t := !t +. Prng.exponential rng ~mean:mean_interarrival;
          !t))

(* Nominal arrival rate (queries/ms) if the workload's nominal mean
   held exactly; the realized rate uses the trace's empirical mean. *)
let arrival_rate cfg =
  let mu = Workloads.nominal_mean_ms cfg.kind in
  cfg.load *. Float.of_int cfg.servers /. mu

(* Same trace config with a different server count (the generated trace
   itself should be reused when comparing server counts). *)
let with_servers cfg servers = { cfg with servers }
