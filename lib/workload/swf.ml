(* Streaming Standard Workload Format reader/writer. See swf.mli for
   the format summary; the authoritative description is Feitelson's
   "Standard Workload Format" page of the Parallel Workloads Archive.

   Design constraints: archive logs run to millions of lines, so the
   reader holds one line at a time (plus the header block, which is
   small); every parse failure reports [file:line:] so a broken log
   pinpoints itself. *)

type job = {
  job_id : int;
  submit : float;
  wait : float;
  run_time : float;
  procs : int;
  cpu_time : float;
  memory : float;
  req_procs : int;
  req_time : float;
  req_memory : float;
  status : int;
  user : int;
  group : int;
  app : int;
  queue : int;
  partition : int;
  preceding : int;
  think_time : float;
}

exception Parse_error of string

type reader = {
  rpath : string;
  ic : in_channel;
  mutable lineno : int;
  mutable pending : string option;
      (** one line of pushback: the first data line, read while
          consuming the header block *)
  mutable meta : (string * string) list;
  mutable closed : bool;
}

let parse_error r fmt =
  Fmt.kstr
    (fun s ->
      raise (Parse_error (Printf.sprintf "%s:%d: %s" r.rpath r.lineno s)))
    fmt

let is_comment line = String.length line > 0 && line.[0] = ';'

(* "; MaxJobs: 73496" -> ("MaxJobs", "73496"); comments without a
   colon keep their text under the empty key. *)
let meta_of_comment line =
  let body = String.trim (String.sub line 1 (String.length line - 1)) in
  match String.index_opt body ':' with
  | Some i ->
    ( String.trim (String.sub body 0 i),
      String.trim (String.sub body (i + 1) (String.length body - i - 1)) )
  | None -> ("", body)

let input_line_opt r =
  match input_line r.ic with
  | line ->
    r.lineno <- r.lineno + 1;
    Some line
  | exception End_of_file -> None

(* Eagerly consume the leading comment block so [metadata] is
   available right after opening; the first non-comment line is kept
   as pushback for [next]. *)
let open_file rpath =
  let ic = open_in rpath in
  let r = { rpath; ic; lineno = 0; pending = None; meta = []; closed = false } in
  let rec header acc =
    match input_line_opt r with
    | None -> acc
    | Some line ->
      if is_comment line then header (meta_of_comment line :: acc)
      else begin
        r.pending <- Some line;
        acc
      end
  in
  r.meta <- List.rev (header []);
  r

let close r =
  if not r.closed then begin
    r.closed <- true;
    close_in r.ic
  end

let with_file path f =
  let r = open_file path in
  Fun.protect ~finally:(fun () -> close r) (fun () -> f r)

let path r = r.rpath
let metadata r = r.meta

let find_meta r key =
  let key = String.lowercase_ascii key in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = key then Some v else None)
    r.meta

(* Fields are separated by runs of spaces/tabs (and a stray '\r' on
   CRLF logs). *)
let split_fields line =
  let n = String.length line in
  let is_sep c = c = ' ' || c = '\t' || c = '\r' in
  let fields = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && is_sep line.[!i] do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while !i < n && not (is_sep line.[!i]) do
        incr i
      done;
      fields := String.sub line start (!i - start) :: !fields
    end
  done;
  List.rev !fields

let float_field r name s =
  match float_of_string_opt s with
  | Some v when Float.is_nan v -> parse_error r "field %s is NaN" name
  | Some v -> v
  | None -> parse_error r "field %s: %S is not a number" name s

(* Integral fields occasionally appear as "12.0" in archive logs;
   accept any finite numeric and truncate. *)
let int_field r name s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> (
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> Float.to_int v
    | Some _ | None -> parse_error r "field %s: %S is not a number" name s)

let n_fields = 18

let job_of_fields r fields =
  let a = Array.make n_fields "-1" in
  List.iteri (fun i f -> if i < n_fields then a.(i) <- f) fields;
  {
    job_id = int_field r "job_id" a.(0);
    submit = float_field r "submit" a.(1);
    wait = float_field r "wait" a.(2);
    run_time = float_field r "run_time" a.(3);
    procs = int_field r "procs" a.(4);
    cpu_time = float_field r "cpu_time" a.(5);
    memory = float_field r "memory" a.(6);
    req_procs = int_field r "req_procs" a.(7);
    req_time = float_field r "req_time" a.(8);
    req_memory = float_field r "req_memory" a.(9);
    status = int_field r "status" a.(10);
    user = int_field r "user" a.(11);
    group = int_field r "group" a.(12);
    app = int_field r "app" a.(13);
    queue = int_field r "queue" a.(14);
    partition = int_field r "partition" a.(15);
    preceding = int_field r "preceding" a.(16);
    think_time = float_field r "think_time" a.(17);
  }

let rec next r =
  let line =
    match r.pending with
    | Some line ->
      r.pending <- None;
      Some line
    | None -> if r.closed then None else input_line_opt r
  in
  match line with
  | None -> None
  | Some line ->
    if is_comment line then next r (* mid-file comment *)
    else begin
      match split_fields line with
      | [] -> next r (* blank line *)
      | fields ->
        let k = List.length fields in
        if k < 4 then
          parse_error r "expected at least 4 of the %d SWF fields, got %d in %S"
            n_fields k line
        else if k > n_fields then
          parse_error r "expected at most %d SWF fields, got %d in %S" n_fields
            k line
        else Some (job_of_fields r fields)
    end

let read_chunk r ~max =
  if max <= 0 then invalid_arg "Swf.read_chunk: max must be positive";
  let rec go acc k =
    if k = 0 then List.rev acc
    else match next r with None -> List.rev acc | Some j -> go (j :: acc) (k - 1)
  in
  Array.of_list (go [] max)

let to_seq r =
  let rec seq () =
    match next r with None -> Seq.Nil | Some j -> Seq.Cons (j, seq)
  in
  seq

let fold path ~init ~f =
  with_file path (fun r ->
      let rec go acc = match next r with None -> acc | Some j -> go (f acc j) in
      go init)

(* ------------------------------------------------------------------ *)
(* Writing *)

(* %.17g everywhere would round-trip but makes fixture lines
   unreadable; archive values are integral or short decimals, so
   integers print without a point and everything else with enough
   digits to round-trip. *)
let field_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let line_of_job j =
  String.concat " "
    [
      string_of_int j.job_id;
      field_str j.submit;
      field_str j.wait;
      field_str j.run_time;
      string_of_int j.procs;
      field_str j.cpu_time;
      field_str j.memory;
      string_of_int j.req_procs;
      field_str j.req_time;
      field_str j.req_memory;
      string_of_int j.status;
      string_of_int j.user;
      string_of_int j.group;
      string_of_int j.app;
      string_of_int j.queue;
      string_of_int j.partition;
      string_of_int j.preceding;
      field_str j.think_time;
    ]

let save path ?(header = []) jobs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun h -> Printf.fprintf oc "; %s\n" h) header;
      Array.iter
        (fun j ->
          output_string oc (line_of_job j);
          output_char oc '\n')
        jobs)
