(** Bursty/diurnal arrivals: a piecewise-constant Poisson rate
    schedule cycling over the trace, for elasticity experiments (and
    any workload whose intensity moves while the system runs).

    Sizes, SLAs and estimation errors are drawn exactly as
    {!Trace.generate} draws them; only the arrival instants differ.
    Deterministic in [cfg.seed]. *)

(** Hold the system at [rho] times the config's base load for
    [duration] ms. *)
type phase = { duration : float; rho : float }

(** Total duration of one cycle of the schedule. *)
val period : phase array -> float

(** Duration-weighted mean load multiplier over one cycle. *)
val mean_rho : phase array -> float

(** A smooth day in [steps] piecewise-constant segments: a raised
    cosine from [low] (cycle start/end) to [high] (mid-cycle). *)
val diurnal :
  ?steps:int -> period:float -> low:float -> high:float -> unit -> phase array

(** On/off bursts: [low] for [(1-duty)*period], then [high] for
    [duty*period]. *)
val square : period:float -> duty:float -> low:float -> high:float -> phase array

(** Generate [cfg.n_queries] queries whose arrival process follows the
    cycling schedule; phase [rho] multiplies [cfg.load]. Raises
    [Invalid_argument] on empty schedules, non-positive durations, or
    an all-zero schedule. *)
val generate : Trace.config -> phase array -> Query.t array
