(** Fixed-size domain pool with deterministic, submission-ordered
    reduction.

    The experiment grids are embarrassingly parallel: every cell (and
    every repeat within a cell) builds its own trace, metrics and
    scheduler state from an explicit seed, so jobs share nothing but
    read-only inputs. This module fans such jobs out across stdlib
    [Domain]s while keeping one hard guarantee:

    {b The determinism contract.} [map_ordered f arr] returns exactly
    the array the serial [Array.map f arr] would return, with results
    stored (and therefore reduced by the caller) in submission order.
    Worker count affects only wall clock — float accumulation order,
    and with it every reported mean, is bit-identical to the serial
    run. Exceptions are deterministic too: if several jobs raise, the
    one with the lowest index is re-raised.

    Two layers:

    - {!create}/{!run}: an explicit pool. [run] from inside a worker
      of any pool raises {!Nested_parallelism} (it would deadlock the
      pool on itself).
    - {!set_jobs}/{!map_ordered}: the ambient pool the experiment
      layer uses. Inside a worker, or with jobs = 1 (the default),
      [map_ordered] silently degrades to the serial map — nested
      fan-outs (a grid parallelising cells whose cells parallelise
      repeats) run the inner level serially instead of failing. *)

(** Raised by {!run} when called from inside a pool worker. *)
exception Nested_parallelism

type pool

(** Hard upper bound on [jobs] (the OCaml runtime caps live domains
    at 128; half of that is far beyond any machine this targets). *)
val max_jobs : int

(** [create ~jobs] spawns [jobs] worker domains. Raises
    [Invalid_argument] unless [1 <= jobs <= max_jobs]. *)
val create : jobs:int -> pool

val pool_jobs : pool -> int

(** [run pool f arr] evaluates [f] on every element on the worker
    domains and returns the results in submission order (see the
    determinism contract above). Raises {!Nested_parallelism} from
    inside a worker, [Invalid_argument] on a shut-down or busy pool. *)
val run : pool -> ('a -> 'b) -> 'a array -> 'b array

(** Signal the workers to exit and join them. Idempotent. *)
val shutdown : pool -> unit

(** True on a pool worker domain (any pool). *)
val in_worker : unit -> bool

(** {1 Ambient pool}

    One process-wide pool for the experiment layer, owned by the main
    domain. *)

(** [set_jobs n] replaces the ambient pool: [n = 1] (the default
    state) shuts it down and makes {!map_ordered} serial; [n > 1]
    spawns a fresh [n]-worker pool. Raises [Invalid_argument] unless
    [1 <= n <= max_jobs]. *)
val set_jobs : int -> unit

(** Current ambient width (1 when serial). *)
val jobs : unit -> int

(** [SLATREE_JOBS] parsed, [None] when unset or malformed (a warning
    is printed for malformed values). *)
val jobs_from_env : unit -> int option

(** [setup ?jobs ()] resolves the ambient width: the explicit [jobs]
    if given, else [SLATREE_JOBS], else 1 — then {!set_jobs} it. *)
val setup : ?jobs:int -> unit -> unit

(** [map_ordered f arr] over the ambient pool; serial (in index
    order) when the pool is absent, when called from a worker, or on
    arrays of fewer than two elements. *)
val map_ordered : ('a -> 'b) -> 'a array -> 'b array

(** {!map_ordered} over a list (order preserved). *)
val map_list : ('a -> 'b) -> 'a list -> 'b list
