exception Nested_parallelism

let max_jobs = 64

(* Worker domains mark themselves via DLS so [run]/[map_ordered] can
   tell when they are being re-entered from inside a job. *)
let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

type pool = {
  m : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable pending : int; (* jobs of the current batch not yet finished *)
  mutable busy : bool; (* a batch is in flight *)
  mutable stopped : bool;
  n_workers : int;
  mutable workers : unit Domain.t array;
}

let pool_jobs t = t.n_workers

let worker_loop t () =
  Domain.DLS.set in_worker_key true;
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.work_available t.m
    done;
    if t.stopped && Queue.is_empty t.queue then Mutex.unlock t.m
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.m;
      (* Jobs never raise: [run] wraps them so failures land in the
         per-index error slot instead of killing the domain. *)
      job ();
      Mutex.lock t.m;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.m;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  if jobs < 1 || jobs > max_jobs then
    invalid_arg
      (Printf.sprintf "Parallel.create: jobs must be in [1, %d], got %d"
         max_jobs jobs);
  let t =
    {
      m = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      busy = false;
      stopped = false;
      n_workers = jobs;
      workers = [||];
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (worker_loop t));
  t

let shutdown t =
  Mutex.lock t.m;
  let already = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.m;
  if not already then begin
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let run t f arr =
  if in_worker () then raise Nested_parallelism;
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    Mutex.lock t.m;
    if t.stopped then begin
      Mutex.unlock t.m;
      invalid_arg "Parallel.run: pool is shut down"
    end;
    if t.busy then begin
      Mutex.unlock t.m;
      invalid_arg "Parallel.run: pool is already running a batch"
    end;
    t.busy <- true;
    t.pending <- n;
    for i = 0 to n - 1 do
      Queue.push
        (fun () ->
          match f arr.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e)
        t.queue
    done;
    Condition.broadcast t.work_available;
    while t.pending > 0 do
      Condition.wait t.batch_done t.m
    done;
    t.busy <- false;
    Mutex.unlock t.m;
    (* The mutex hand-offs above order every slot write before the
       reads below, so no further synchronisation is needed. If
       several jobs failed, re-raise the lowest index so the error
       surfaced does not depend on worker scheduling. *)
    let first_error = Array.find_opt Option.is_some errors in
    match first_error with
    | Some (Some e) -> raise e
    | _ ->
        Array.map
          (function
            | Some v -> v
            | None -> invalid_arg "Parallel.run: missing result")
          results
  end

(* ----- Ambient pool ----------------------------------------------- *)

let current : pool option ref = ref None
let at_exit_installed = ref false

let set_jobs n =
  if n < 1 || n > max_jobs then
    invalid_arg
      (Printf.sprintf "Parallel.set_jobs: jobs must be in [1, %d], got %d"
         max_jobs n);
  (match !current with
  | Some p ->
      current := None;
      shutdown p
  | None -> ());
  if n > 1 then begin
    current := Some (create ~jobs:n);
    if not !at_exit_installed then begin
      at_exit_installed := true;
      at_exit (fun () ->
          match !current with
          | Some p ->
              current := None;
              shutdown p
          | None -> ())
    end
  end

let jobs () = match !current with Some p -> p.n_workers | None -> 1

let jobs_from_env () =
  match Sys.getenv_opt "SLATREE_JOBS" with
  | None | Some "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 && n <= max_jobs -> Some n
      | _ ->
          Printf.eprintf
            "warning: ignoring SLATREE_JOBS=%s (want an integer in [1, %d])\n%!"
            s max_jobs;
          None)

let setup ?jobs () =
  let n =
    match jobs with
    | Some n -> n
    | None -> ( match jobs_from_env () with Some n -> n | None -> 1)
  in
  set_jobs n

let serial_map f arr =
  (* Explicit index loop: the evaluation order of [Array.map] is
     unspecified, and the determinism contract needs 0..n-1. *)
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f arr.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- f arr.(i)
    done;
    out
  end

let map_ordered f arr =
  match !current with
  | Some p when (not (in_worker ())) && Array.length arr > 1 -> run p f arr
  | _ -> serial_map f arr

let map_list f l = Array.to_list (map_ordered f (Array.of_list l))
